//! E20 — kernel-layer microbenchmarks and their correctness gate.
//!
//! The full run times batch gamma decode in its three dispatch regimes
//! (dual-chain sparse, quad-chain wide, burst dense) and the occupancy
//! block-skipping intersection against its forced-scalar arm, asserting
//! along the way that the fast paths actually ran (kernel counters),
//! that skip-on equals skip-off element for element, and that the
//! sparse-probe-vs-dense workload beats forced scalar by ≥2×. `--smoke`
//! shrinks the workloads and loosens the speedup gate to 1.5× so shared
//! CI runners gate on correctness and gross regressions without flaking
//! on noise. The machine-readable `kernel/*` rows land in
//! `BENCH_NNNN.json` via `all_experiments --json`.

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("--smoke") => {
            psi_bench::e20_run(20_000, 400, 1.5);
        }
        Some(other) => {
            eprintln!("unknown argument `{other}`; usage: e20_kernels [--smoke]");
            std::process::exit(2);
        }
        None => {
            psi_bench::e20();
        }
    }
}
