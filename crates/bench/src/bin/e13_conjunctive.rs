fn main() {
    psi_bench::e13();
}
