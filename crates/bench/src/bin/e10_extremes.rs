fn main() {
    psi_bench::e10();
}
