fn main() {
    psi_bench::e12();
}
