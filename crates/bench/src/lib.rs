//! Experiment harnesses reproducing every quantitative claim of Pagh &
//! Rao (PODS 2009).
//!
//! The paper is pure theory, so the "tables and figures" to regenerate are
//! its seven theorems, the comparative claims of §1.2–1.3, and the
//! persistence layer's charge-vs-real-read contract. Each `eNN`
//! function prints one experiment's table (measured I/Os / bits / space
//! against the theory curve); `EXPERIMENTS.md` records the paper-vs-
//! measured outcome. Binaries: `cargo run -p psi-bench --release --bin
//! e01_uniform_tree` … or `--bin all_experiments`.
//!
//! `all_experiments --json [PATH]` skips the tables and instead emits a
//! machine-readable `BENCH_NNNN.json` of hot-path ns/op numbers (decode,
//! merge, query) via [`jsonout`], the perf trajectory baseline diffed by
//! successive PRs.

pub mod compare;
pub mod jsonout;

use psi_api::{AppendIndex, DynamicIndex, SecondaryIndex};
use psi_baselines::*;
use psi_core::*;
use psi_io::{cost, IoConfig, IoSession, DEFAULT_BLOCK_BITS};
use psi_workloads as wl;
use rand::prelude::*;
use rand::rngs::StdRng;

const B: u64 = DEFAULT_BLOCK_BITS;

fn head(id: &str, claim: &str) {
    println!("\n================================================================");
    println!("{id}: {claim}");
    println!("================================================================");
}

fn row(cells: &[String]) {
    println!(
        "{}",
        cells
            .iter()
            .map(|c| format!("{c:>14}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
}

fn hdr(cols: &[&str]) {
    row(&cols.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(15 * cols.len()));
}

fn f(x: f64) -> String {
    format!("{x:.2}")
}

/// E1 — Theorem 1: `UniformTreeIndex` uses `O(n lg² σ)` bits and answers
/// in `O(T/B + lg σ)` I/Os.
pub fn e01() {
    head(
        "E1",
        "Thm 1: uniform tree — space O(n lg^2 sigma), query O(T/B + lg sigma)",
    );
    hdr(&[
        "n",
        "sigma",
        "bits/n",
        "n lg^2s/n",
        "range",
        "z",
        "I/Os",
        "T/B+lgs",
    ]);
    for &(n, sigma) in &[(1usize << 16, 64u32), (1 << 18, 256), (1 << 20, 1024)] {
        let s = wl::uniform(n, sigma, 1);
        let idx = UniformTreeIndex::build(&s, sigma, IoConfig::default());
        let lg_s = cost::lg2_ceil(u64::from(sigma)) as f64;
        for width in [1u32, sigma / 8, sigma / 2] {
            let lo = sigma / 4;
            let hi = (lo + width - 1).min(sigma - 1);
            let (r, io) = idx.query_measured(lo, hi);
            let bound = r.size_bits() as f64 / B as f64 + lg_s;
            row(&[
                n.to_string(),
                sigma.to_string(),
                f(idx.space_bits() as f64 / n as f64),
                f(lg_s * lg_s),
                format!("[{lo},{hi}]"),
                r.cardinality().to_string(),
                io.reads.to_string(),
                f(bound),
            ]);
        }
    }
}

/// E2 — Theorem 2: `OptimalIndex` space `O(nH₀+n+σlg²n)`, query
/// `O(z lg(n/z)/B + log_b n + lg lg n)` across selectivities and
/// distributions.
pub fn e02() {
    head(
        "E2",
        "Thm 2: optimal index — entropy space, output-sensitive queries",
    );
    let n = 1usize << 20;
    let sigma = 1024u32;
    hdr(&[
        "dist", "H0(bits)", "bits/n", "sel", "z", "I/Os", "thm2", "ratio",
    ]);
    for (name, s) in [
        ("uniform", wl::uniform(n, sigma, 2)),
        ("zipf1.0", wl::zipf(n, sigma, 1.0, 2)),
        ("runs32", wl::runs(n, sigma, 32.0, 2)),
    ] {
        let idx = OptimalIndex::build(&s, sigma, IoConfig::default());
        let h0 = psi_bits::entropy::h0(&s, sigma);
        let counts = psi_bits::entropy::char_counts(&s, sigma);
        let b = IoConfig::default().words_per_block(n as u64);
        for sel in [1e-4, 1e-3, 1e-2, 1e-1, 0.4] {
            let q = wl::ranges_with_selectivity(&counts, sel, 1, 7)[0];
            let (r, io) = idx.query_measured(q.lo, q.hi);
            let z = r.cardinality();
            let bound = cost::thm2_query_ios(n as u64, z, B, b);
            row(&[
                name.into(),
                f(h0),
                f(idx.space_bits() as f64 / n as f64),
                format!("{sel:.0e}"),
                z.to_string(),
                io.reads.to_string(),
                f(bound),
                f(io.reads as f64 / bound.max(1.0)),
            ]);
        }
    }
}

/// E3 — §1.2's gap: the compressed-bitmap scan reads a factor
/// `Ω(lg σ / lg(σ/ℓ))` more bits than the optimal output as the range
/// width `ℓ` grows; the optimal index does not.
pub fn e03() {
    head(
        "E3",
        "sec 1.2: scan reads lg(sigma)/lg(sigma/l) x output; optimal stays flat",
    );
    let n = 1usize << 20;
    let sigma = 1024u32;
    let s = wl::uniform(n, sigma, 3);
    let scan = CompressedScanIndex::build(&s, sigma, IoConfig::default());
    let opt = OptimalIndex::build(&s, sigma, IoConfig::default());
    hdr(&[
        "l",
        "z",
        "out bits",
        "scan bits",
        "scan/out",
        "opt bits",
        "opt/out",
    ]);
    for l in [1u32, 4, 16, 64, 256, 512] {
        let (lo, hi) = (0, l - 1);
        let io_s = IoSession::new();
        let r = scan.query(lo, hi, &io_s);
        let out_bits = r.size_bits().max(1);
        let io_o = IoSession::new();
        let ro = opt.query(lo, hi, &io_o);
        let out_o = ro.size_bits().max(1);
        row(&[
            l.to_string(),
            r.cardinality().to_string(),
            out_bits.to_string(),
            io_s.stats().bits_read.to_string(),
            f(io_s.stats().bits_read as f64 / out_bits as f64),
            io_o.stats().bits_read.to_string(),
            f(io_o.stats().bits_read as f64 / out_o as f64),
        ]);
    }
}

/// E4 — §1.2's trade-off: binning/multi-resolution trade space against
/// query blow-up with `w`; the optimal index sits at the best of both.
pub fn e04() {
    head(
        "E4",
        "sec 1.2: multi-resolution space/time trade-off vs the no-trade-off point",
    );
    let n = 1usize << 18;
    let sigma = 1024u32;
    let s = wl::uniform(n, sigma, 4);
    hdr(&["index", "w", "bits/n", "I/Os", "bits read/out"]);
    let (lo, hi) = (100u32, 355u32);
    for w in [2u32, 4, 8, 16, 32] {
        let idx = MultiResolutionIndex::build(&s, sigma, w, IoConfig::default());
        let io = IoSession::new();
        let r = idx.query(lo, hi, &io);
        row(&[
            "multires".into(),
            w.to_string(),
            f(idx.space_bits() as f64 / n as f64),
            io.stats().reads.to_string(),
            f(io.stats().bits_read as f64 / r.size_bits().max(1) as f64),
        ]);
    }
    let opt = OptimalIndex::build(&s, sigma, IoConfig::default());
    let io = IoSession::new();
    let r = opt.query(lo, hi, &io);
    row(&[
        "optimal".into(),
        "-".into(),
        f(opt.space_bits() as f64 / n as f64),
        io.stats().reads.to_string(),
        f(io.stats().bits_read as f64 / r.size_bits().max(1) as f64),
    ]);
}

/// E5 — Theorem 3: approximate queries read `O(z lg(1/ε))` bits with
/// measured false-positive rate ≤ ε.
pub fn e05() {
    head(
        "E5",
        "Thm 3: approximate queries — bits ~ z lg(1/eps), FP rate <= eps",
    );
    let n = 1usize << 20;
    let sigma = 1024u32;
    let s = wl::uniform(n, sigma, 5);
    let idx = ApproximateIndex::build(&s, sigma, IoConfig::default(), 99);
    let exact_truth: std::collections::HashSet<u64> =
        psi_api::naive_query(&s, 77, 77).iter().collect();
    hdr(&[
        "eps",
        "path",
        "bits read",
        "z lg(1/e)",
        "exact bits",
        "FP rate",
    ]);
    for eps in [0.5, 0.1, 0.05, 0.01, 1e-3, 1e-6] {
        let io = IoSession::new();
        let r = idx.query_approx(77, 77, eps, &io);
        let z = r.exact_cardinality();
        let mut fp = 0u64;
        let sample = 200_000u64;
        for i in 0..sample {
            if !exact_truth.contains(&i) && r.contains(i) {
                fp += 1;
            }
        }
        let io_e = IoSession::new();
        let _ = idx.query(77, 77, &io_e);
        row(&[
            format!("{eps:.0e}"),
            if r.is_exact() {
                "exact".into()
            } else {
                "hashed".to_string()
            },
            io.stats().bits_read.to_string(),
            f(z as f64 * (1.0 / eps).log2()),
            io_e.stats().bits_read.to_string(),
            format!("{:.5}", fp as f64 / sample as f64),
        ]);
    }
}

/// E6 — Theorem 4: amortized append cost of the semi-dynamic index vs
/// `lg lg n`.
pub fn e06() {
    head(
        "E6",
        "Thm 4: semi-dynamic appends — amortized O(lg lg n) I/Os",
    );
    hdr(&[
        "n appended",
        "I/Os/append",
        "lglg n",
        "rebuilds",
        "space bits/n",
    ]);
    let sigma = 256u32;
    let stream = wl::zipf(1 << 18, sigma, 0.9, 6);
    let mut idx = SemiDynamicIndex::new(sigma, IoConfig::default());
    let mut total = 0u64;
    let mut next_report = 1usize << 14;
    for (i, &c) in stream.iter().enumerate() {
        let io = IoSession::new();
        idx.append(c, &io);
        total += io.stats().total();
        if i + 1 == next_report {
            row(&[
                (i + 1).to_string(),
                f(total as f64 / (i + 1) as f64),
                f(cost::lg_lg((i + 1) as u64)),
                (idx.stats().subtree_rebuilds + idx.stats().global_rebuilds).to_string(),
                f(idx.space_bits() as f64 / (i + 1) as f64),
            ]);
            next_report *= 4;
        }
    }
}

/// E7 — Theorem 5: buffered appends cost `O(lg n / b)` ≪ 1 I/O; queries
/// pay an additive `O(lg n)`.
pub fn e07() {
    head(
        "E7",
        "Thm 5: buffered appends — amortized O(lg n / b) << 1 I/O",
    );
    hdr(&[
        "B bits",
        "b",
        "I/Os/append",
        "lg n / b",
        "query I/Os",
        "query+log",
    ]);
    let sigma = 256u32;
    let n = 1usize << 17;
    let stream = wl::uniform(n, sigma, 7);
    for block_bits in [2048u64, 8192, 32768] {
        let cfg = IoConfig::with_block_bits(block_bits);
        let mut idx = BufferedIndex::new(sigma, cfg);
        let mut total = 0u64;
        for &c in &stream {
            let io = IoSession::new();
            idx.append(c, &io);
            total += io.stats().total();
        }
        let b = cfg.words_per_block(n as u64);
        let io_q = IoSession::new();
        let _ = idx.query(10, 20, &io_q);
        row(&[
            block_bits.to_string(),
            b.to_string(),
            format!("{:.4}", total as f64 / n as f64),
            format!("{:.4}", cost::lg2(n as f64) / b as f64),
            io_q.stats().reads.to_string(),
            format!("(pending {})", idx.pending()),
        ]);
    }
}

/// E8 — Theorem 6: buffered bitmap index — point queries `O(T/B + lg n)`,
/// updates `O(lg n / b)`.
pub fn e08() {
    head(
        "E8",
        "Thm 6: buffered bitmap index — point O(T/B + lg n), update O(lg n / b)",
    );
    let sigma = 256u32;
    let n = 1usize << 18;
    let s = wl::uniform(n, sigma, 8);
    let mut idx = BufferedBitmapIndex::build(&s, sigma, IoConfig::default());
    let mut rng = StdRng::seed_from_u64(9);
    let updates = 50_000u64;
    let mut total = 0u64;
    for step in 0..updates {
        let io = IoSession::new();
        let ch = rng.gen_range(0..sigma);
        idx.insert(ch, n as u64 + step, &io);
        total += io.stats().total();
    }
    println!(
        "updates: {:.4} I/Os amortized (lg n / b = {:.4})",
        total as f64 / updates as f64,
        cost::lg2(n as f64) / IoConfig::default().words_per_block(n as u64) as f64
    );
    hdr(&["char", "T (result)", "I/Os", "T/B + lg n"]);
    for ch in [0u32, 63, 200] {
        let io = IoSession::new();
        let r = idx.point_query(ch, &io);
        let t_bits = cost::output_bits(n as u64 + updates, r.len() as u64);
        row(&[
            ch.to_string(),
            r.len().to_string(),
            io.stats().reads.to_string(),
            f(t_bits / B as f64 + cost::lg2(n as f64)),
        ]);
    }
}

/// E9 — Theorem 7: fully dynamic index — changes `O(lg n lg lg n / b)`,
/// queries `O(z lg(n/z)/B + lg n lg lg n)`.
pub fn e09() {
    head(
        "E9",
        "Thm 7: fully dynamic — buffered changes, near-optimal queries",
    );
    let sigma = 128u32;
    let n = 1usize << 17;
    let mut current = wl::uniform(n, sigma, 10);
    let mut idx = FullyDynamicIndex::build(&current, sigma, IoConfig::default());
    let mut rng = StdRng::seed_from_u64(11);
    let updates = 20_000;
    let mut total = 0u64;
    for _ in 0..updates {
        let pos = rng.gen_range(0..n as u64);
        let io = IoSession::new();
        if rng.gen_bool(0.1) {
            idx.delete(pos, &io);
            current[pos as usize] = sigma;
        } else {
            let v = rng.gen_range(0..sigma);
            idx.change(pos, v, &io);
            current[pos as usize] = v;
        }
        total += io.stats().total();
    }
    let b = IoConfig::default().words_per_block(n as u64);
    println!(
        "changes: {:.3} I/Os amortized (lg n lg lg n / b = {:.3}); {} epoch rebuilds",
        total as f64 / f64::from(updates),
        cost::lg2(n as f64) * cost::lg_lg(n as u64) / b as f64,
        idx.global_rebuilds
    );
    hdr(&["range", "z", "I/Os", "z lg(n/z)/B + lgn lglgn"]);
    for (lo, hi) in [(5u32, 5u32), (10, 30), (0, 100)] {
        let io = IoSession::new();
        let r = idx.query(lo, hi, &io);
        let z = r.cardinality();
        let bound =
            cost::output_bits(n as u64, z) / B as f64 + cost::lg2(n as f64) * cost::lg_lg(n as u64);
        row(&[
            format!("[{lo},{hi}]"),
            z.to_string(),
            io.stats().reads.to_string(),
            f(bound),
        ]);
    }
}

/// E10 — §1.3: the whole spectrum ("B-trees and uncompressed bitmap
/// indexes at the extremes") swept across selectivity.
pub fn e10() {
    head(
        "E10",
        "sec 1.3: the spectrum — who wins at which selectivity",
    );
    let n = 1usize << 18;
    let sigma = 512u32;
    let s = wl::uniform(n, sigma, 12);
    let cfg = IoConfig::default();
    let opt = OptimalIndex::build(&s, sigma, cfg);
    let pl = PositionListIndex::build(&s, sigma, cfg);
    let un = UncompressedBitmapIndex::build(&s, sigma, cfg);
    let cs = CompressedScanIndex::build(&s, sigma, cfg);
    let bi = BinnedBitmapIndex::build(&s, sigma, 16, cfg);
    let mr = MultiResolutionIndex::build(&s, sigma, 4, cfg);
    let re = RangeEncodedIndex::build(&s, sigma, cfg);
    let ie = IntervalEncodedIndex::build(&s, sigma, cfg);
    println!("space (bits/value):");
    hdr(&[
        "optimal",
        "poslist",
        "uncomp",
        "compscan",
        "binned16",
        "multires4",
        "rangeenc",
        "intvenc",
    ]);
    row(&[
        f(opt.space_bits() as f64 / n as f64),
        f(pl.space_bits() as f64 / n as f64),
        f(un.space_bits() as f64 / n as f64),
        f(cs.space_bits() as f64 / n as f64),
        f(bi.space_bits() as f64 / n as f64),
        f(mr.space_bits() as f64 / n as f64),
        f(re.space_bits() as f64 / n as f64),
        f(ie.space_bits() as f64 / n as f64),
    ]);
    println!("\nquery I/Os by range width:");
    hdr(&[
        "l", "z", "optimal", "poslist", "uncomp", "compscan", "binned", "multires", "rangeenc",
    ]);
    for l in [1u32, 8, 64, 256, 448] {
        let (lo, hi) = (16, 16 + l - 1);
        let z = psi_api::naive_query(&s, lo, hi).cardinality();
        let ios = |idx: &dyn SecondaryIndex| {
            let io = IoSession::new();
            let _ = idx.query(lo, hi, &io);
            io.stats().reads.to_string()
        };
        row(&[
            l.to_string(),
            z.to_string(),
            ios(&opt),
            ios(&pl),
            ios(&un),
            ios(&cs),
            ios(&bi),
            ios(&mr),
            ios(&re),
        ]);
    }
}

/// E11 — §2.2: space tracks the 0th-order entropy as skew varies.
pub fn e11() {
    head("E11", "sec 2.2: space adapts to entropy (Zipf skew sweep)");
    let n = 1usize << 18;
    let sigma = 256u32;
    hdr(&["zipf s", "H0 (bits)", "payload/n", "space/n", "payload/nH0"]);
    for s_param in [0.0, 0.5, 1.0, 1.5, 2.0] {
        let s = wl::zipf(n, sigma, s_param, 13);
        let h0 = psi_bits::entropy::h0(&s, sigma).max(1e-9);
        let idx = OptimalIndex::build(&s, sigma, IoConfig::default());
        row(&[
            f(s_param),
            f(h0),
            f(idx.payload_bits() as f64 / n as f64),
            f(idx.space_bits() as f64 / n as f64),
            f(idx.payload_bits() as f64 / (n as f64 * h0)),
        ]);
    }
    let s = wl::runs(n, sigma, 64.0, 13);
    let idx = OptimalIndex::build(&s, sigma, IoConfig::default());
    row(&[
        "runs64".into(),
        f(psi_bits::entropy::h0(&s, sigma)),
        f(idx.payload_bits() as f64 / n as f64),
        f(idx.space_bits() as f64 / n as f64),
        "(clustered)".into(),
    ]);
}

/// E12 — §1/§3: d-dimensional RID intersection, exact vs approximate with
/// `ε^{d−k}` survivor decay.
pub fn e12() {
    head(
        "E12",
        "sec 1/3: RID intersection — married men aged 33, exact vs approximate",
    );
    let n = 1usize << 18;
    let table = wl::people_table(n, 14);
    let cols: Vec<_> = table.columns.iter().collect();
    let conds = [(0usize, 1u32, 1u32), (1, 0, 0), (2, 30, 35)];
    let truth: Vec<u64> =
        table.naive_conjunctive_query(&[("marital_status", 1, 1), ("sex", 0, 0), ("age", 30, 35)]);
    let cfg = IoConfig::default();
    // Exact.
    let io = IoSession::new();
    let exact: Vec<psi_api::RidSet> = conds
        .iter()
        .map(|&(c, lo, hi)| {
            OptimalIndex::build(&cols[c].data, cols[c].sigma, cfg).query(lo, hi, &io)
        })
        .collect();
    let best_of = |f: &dyn Fn() -> psi_api::RidSet| {
        let mut best = u128::MAX;
        let mut out = None;
        for _ in 0..5 {
            let t = std::time::Instant::now();
            let r = f();
            best = best.min(t.elapsed().as_micros());
            out = Some(r);
        }
        (out.expect("ran"), best)
    };
    let (result, gallop_us) = best_of(&|| exact[0].intersect(&exact[1]).intersect(&exact[2]));
    let (reference, reference_us) = best_of(&|| {
        exact[0]
            .intersect_reference(&exact[1])
            .intersect_reference(&exact[2])
    });
    assert_eq!(result.to_vec(), reference.to_vec());
    println!(
        "exact: dims z = ({}, {}, {}) -> {} rows (truth {}), {} reads",
        exact[0].cardinality(),
        exact[1].cardinality(),
        exact[2].cardinality(),
        result.cardinality(),
        truth.len(),
        io.stats().reads
    );
    println!(
        "intersection: galloping skip-directory leapfrog {gallop_us} us \
         vs full-decode co-scan {reference_us} us"
    );
    hdr(&["eps", "survivors", "false pos", "bits read", "exact bits"]);
    for eps in [0.1, 0.01, 0.001] {
        let io_a = IoSession::new();
        let approx: Vec<ApproxResult> = conds
            .iter()
            .enumerate()
            .map(|(i, &(c, lo, hi))| {
                ApproximateIndex::build(&cols[c].data, cols[c].sigma, cfg, i as u64)
                    .query_approx(lo, hi, eps, &io_a)
            })
            .collect();
        let refs: Vec<&ApproxResult> = approx.iter().collect();
        let survivors = ApproxResult::intersect_all(&refs);
        let fp = survivors.iter().filter(|p| !truth.contains(p)).count();
        row(&[
            format!("{eps:.0e}"),
            survivors.len().to_string(),
            fp.to_string(),
            io_a.stats().bits_read.to_string(),
            io.stats().bits_read.to_string(),
        ]);
    }
}

/// E13 — the conjunctive query engine: selectivity-ordered intersection
/// vs fixed left-to-right order, across the whole index spectrum, on a
/// skewed (Zipf) multi-attribute workload. Simulated I/O is identical by
/// construction (same covers); the planner's win is ordering the
/// CPU-side combine so every intermediate stays as small as the most
/// selective condition.
pub fn e13() {
    use psi_query::{CombineStrategy, IndexedTable, Predicate};
    head(
        "E13",
        "conjunctive planner: selectivity-ordered vs fixed left-to-right intersection",
    );
    let n = 1usize << 17;
    let table = wl::Table::generate(
        n,
        &[
            wl::ColumnSpec {
                name: "a".into(),
                sigma: 256,
                dist: wl::Dist::Zipf(1.1),
            },
            wl::ColumnSpec {
                name: "b".into(),
                sigma: 64,
                dist: wl::Dist::Zipf(0.9),
            },
            wl::ColumnSpec {
                name: "c".into(),
                sigma: 1024,
                dist: wl::Dist::Zipf(1.3),
            },
        ],
        15,
    );
    // Written worst-first: the broad Zipf-head ranges lead and the
    // selective tail condition comes last, so the fixed order intersects
    // two huge results before ever seeing the small one.
    let predicate = Predicate::and([
        Predicate::range("a", 0, 3),
        Predicate::range("b", 0, 7),
        Predicate::range("c", 700, 720),
    ]);
    let query = predicate.normalize().expect("conjunctive");
    let fixed_order: Vec<usize> = (0..query.len()).collect();
    let cfg = IoConfig::default();
    type BuildFn = Box<dyn Fn(&[u32], u32) -> Box<dyn SecondaryIndex>>;
    let families: Vec<(&'static str, BuildFn)> = vec![
        (
            "optimal",
            Box::new(move |s, g| Box::new(OptimalIndex::build(s, g, cfg))),
        ),
        (
            "uniform_tree",
            Box::new(move |s, g| Box::new(UniformTreeIndex::build(s, g, cfg))),
        ),
        (
            "position_list",
            Box::new(move |s, g| Box::new(PositionListIndex::build(s, g, cfg))),
        ),
        (
            "compressed_scan",
            Box::new(move |s, g| Box::new(CompressedScanIndex::build(s, g, cfg))),
        ),
        (
            "binned_w16",
            Box::new(move |s, g| Box::new(BinnedBitmapIndex::build(s, g, 16, cfg))),
        ),
        (
            "multires_w4",
            Box::new(move |s, g| Box::new(MultiResolutionIndex::build(s, g, 4, cfg))),
        ),
        (
            "range_encoded",
            Box::new(move |s, g| Box::new(RangeEncodedIndex::build(s, g, cfg))),
        ),
    ];
    hdr(&[
        "index",
        "z",
        "I/Os",
        "strategy",
        "planned us",
        "fixed us",
        "speedup",
    ]);
    for (name, build) in &families {
        let indexed = IndexedTable::build(&table, |s, g| build(s, g));
        let best_of = |f: &dyn Fn() -> psi_query::QueryOutcome| {
            let mut best = u128::MAX;
            let mut out = None;
            for _ in 0..5 {
                let t = std::time::Instant::now();
                let r = f();
                best = best.min(t.elapsed().as_micros());
                out = Some(r);
            }
            (out.expect("ran"), best)
        };
        let (planned, planned_us) =
            best_of(&|| indexed.execute_conjunctive(&query).expect("planned"));
        let (fixed, fixed_us) = best_of(&|| {
            indexed
                .execute_forced(&query, &fixed_order, CombineStrategy::Gallop)
                .expect("fixed")
        });
        assert_eq!(
            planned.io, fixed.io,
            "{name}: identical covers must charge identical I/O"
        );
        assert_eq!(planned.rows.to_vec(), fixed.rows.to_vec());
        row(&[
            (*name).into(),
            planned.rows.cardinality().to_string(),
            planned.io.reads.to_string(),
            format!("{:?}", planned.plan.strategy),
            planned_us.to_string(),
            fixed_us.to_string(),
            format!("{:.2}x", fixed_us as f64 / planned_us.max(1) as f64),
        ]);
    }
}

/// E14 — psi-store: cold-cache real block reads equal the simulated
/// charge for every backend, a warm pool reads nothing, and pool
/// capacity controls the fetch count. The save/open/query timings and
/// on-disk sizes land in `jsonout`'s `store/*` rows (BENCH_0004).
pub fn e14() {
    use psi_api::HasDisk;
    use psi_store::{open, Backend, OpenOptions, PersistIndex};
    head(
        "E14",
        "psi-store: cold real reads == simulated charges; warm pool reads nothing",
    );
    let n = 1usize << 16;
    let sigma = 256u32;
    let s = wl::zipf(n, sigma, 1.1, 77);
    let dir = std::env::temp_dir().join("psi_bench_store");
    std::fs::create_dir_all(&dir).expect("bench store dir");
    hdr(&[
        "index",
        "backend",
        "file KiB",
        "sim reads",
        "real reads",
        "warm",
        "verdict",
    ]);
    fn run_family<I: PersistIndex + SecondaryIndex + HasDisk>(
        dir: &std::path::Path,
        name: &str,
        index: &I,
        sigma: u32,
    ) {
        let path = dir.join(format!("{name}.psi"));
        let report = psi_store::save(index, &path).expect("save");
        for backend in [Backend::File, Backend::Mmap] {
            let opened = open::<I>(
                &path,
                &OpenOptions {
                    backend,
                    pool_blocks: 1 << 16,
                    retry: None,
                    verify: true,
                },
            )
            .expect("open");
            // Cold pass: a fixed query set, each under its own session
            // (the pool persists across sessions; the model's residency
            // does not — so real <= sim per query, == summed on first
            // touch of each block).
            let mut sim = 0u64;
            for (lo, hi) in [(0u32, 0u32), (3, 18), (40, sigma - 1), (7, 7)] {
                let io = IoSession::new();
                let _ = opened.index.query(lo, hi, &io);
                sim += io.stats().reads;
            }
            let cold = opened.real_fetches();
            assert!(
                cold <= sim,
                "{name} {backend:?}: real reads {cold} exceed simulated {sim}"
            );
            // Warm pass: same queries, zero new fetches.
            for (lo, hi) in [(0u32, 0u32), (3, 18), (40, sigma - 1), (7, 7)] {
                let io = IoSession::new();
                let _ = opened.index.query(lo, hi, &io);
            }
            let warm_delta = opened.real_fetches() - cold;
            assert_eq!(
                warm_delta, 0,
                "{name} {backend:?}: warm pool must not fetch"
            );
            // Single-query cold equality on a fresh open.
            let fresh = open::<I>(
                &path,
                &OpenOptions {
                    backend,
                    pool_blocks: 1 << 16,
                    retry: None,
                    verify: true,
                },
            )
            .expect("open");
            let io = IoSession::new();
            let _ = fresh.index.query(3, 18, &io);
            assert_eq!(
                fresh.real_fetches(),
                io.stats().reads,
                "{name} {backend:?}: cold query must fetch exactly its charge"
            );
            row(&[
                name.into(),
                format!("{backend:?}"),
                (report.file_bytes / 1024).to_string(),
                sim.to_string(),
                cold.to_string(),
                warm_delta.to_string(),
                "ok".into(),
            ]);
        }
    }
    let cfg = IoConfig::default();
    run_family(&dir, "optimal", &OptimalIndex::build(&s, sigma, cfg), sigma);
    run_family(
        &dir,
        "compressed_scan",
        &CompressedScanIndex::build(&s, sigma, cfg),
        sigma,
    );
    run_family(
        &dir,
        "position_list",
        &PositionListIndex::build(&s, sigma, cfg),
        sigma,
    );
    run_family(
        &dir,
        "multires_w4",
        &MultiResolutionIndex::build(&s, sigma, 4, cfg),
        sigma,
    );
    // Pool sweep: capacity controls refetches under a two-pass replay.
    println!(
        "
pool sweep (optimal, two passes over 6 ranges, File backend):"
    );
    hdr(&["pool blocks", "real reads", "hits", "evictions"]);
    let path = dir.join("optimal.psi");
    for cap in [8usize, 32, 128, 4096] {
        let opened = open::<OptimalIndex>(
            &path,
            &OpenOptions {
                backend: Backend::File,
                pool_blocks: cap,
                retry: None,
                verify: true,
            },
        )
        .expect("open");
        for _ in 0..2 {
            for (lo, hi) in [
                (0u32, 0u32),
                (3, 18),
                (40, 255),
                (7, 7),
                (100, 140),
                (200, 255),
            ] {
                let io = IoSession::new();
                let _ = opened.index.query(lo, hi, &io);
            }
        }
        let st = opened.pool_stats();
        row(&[
            cap.to_string(),
            opened.real_fetches().to_string(),
            st.hits.to_string(),
            st.evictions.to_string(),
        ]);
    }
}

// ---------------------------------------------------------------------------
// E15 — the concurrent read path

/// The E15 query workload: a fixed mix of points, narrow and broad
/// ranges over `[0, sigma)`.
pub fn e15_workload(sigma: u32) -> Vec<(u32, u32)> {
    let mut qs = Vec::new();
    for i in 0..16u32 {
        let lo = (i * 37) % sigma;
        qs.push((lo, lo));
        qs.push((lo, (lo + 15).min(sigma - 1)));
        qs.push((lo / 2, (lo / 2 + sigma / 4).min(sigma - 1)));
    }
    qs
}

/// One throughput measurement: `rounds` passes over `queries`, split
/// across `threads` workers pulling off a shared atomic cursor, each
/// query under its own tracking session (the realistic per-query
/// accounting cost stays in the measured path). Returns queries/second.
pub fn e15_qps<I: SecondaryIndex>(
    index: &I,
    queries: &[(u32, u32)],
    threads: usize,
    rounds: usize,
) -> f64 {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let total = queries.len() * rounds;
    let cursor = AtomicUsize::new(0);
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            scope.spawn(move || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= total {
                    break;
                }
                let (lo, hi) = queries[k % queries.len()];
                let io = IoSession::new();
                std::hint::black_box(index.query(lo, hi, &io).cardinality());
            });
        }
    });
    total as f64 / start.elapsed().as_secs_f64()
}

/// Rounds so one single-threaded pass takes roughly `target_ms`. Run it
/// against the pool state (warm) you are about to measure — a cold-pass
/// calibration undershoots the warm measurement window badly.
pub(crate) fn e15_calibrate<I: SecondaryIndex>(
    index: &I,
    queries: &[(u32, u32)],
    target_ms: u64,
) -> usize {
    let start = std::time::Instant::now();
    for &(lo, hi) in queries {
        let io = IoSession::new();
        std::hint::black_box(index.query(lo, hi, &io).cardinality());
    }
    let pass = start.elapsed().max(std::time::Duration::from_micros(50));
    ((target_ms as f64 / 1000.0 / pass.as_secs_f64()).ceil() as usize).clamp(1, 2000)
}

/// One cold + warm sweep of an opened family. Returns rows of
/// `(threads, cold_real, union_charge, warm_qps)`.
fn e15_family<I>(
    name: &str,
    path: &std::path::Path,
    backend: psi_store::Backend,
    sigma: u32,
    threads: &[usize],
) -> Vec<(usize, u64, u64, f64)>
where
    I: psi_store::PersistIndex + SecondaryIndex,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    let opts = psi_store::OpenOptions {
        backend,
        pool_blocks: 1 << 16,
        retry: None,
        verify: true,
    };
    let queries = e15_workload(sigma);
    // Distinct-block union of the workload's charges: one shared session
    // replay — what a cold pool must fetch at any thread count.
    let union = {
        let opened = psi_store::open::<I>(path, &opts).expect("open");
        let shared = IoSession::new();
        for &(lo, hi) in &queries {
            let _ = opened.index.query(lo, hi, &shared);
        }
        shared.stats().reads
    };
    let mut rows = Vec::new();
    for &t in threads {
        // Cold pass on a fresh open, partitioned across t threads.
        let opened = Arc::new(psi_store::open::<I>(path, &opts).expect("open"));
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..t {
                let opened = Arc::clone(&opened);
                let cursor = &cursor;
                let queries = &queries;
                scope.spawn(move || loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= queries.len() {
                        break;
                    }
                    let (lo, hi) = queries[k];
                    let io = IoSession::new();
                    let _ = opened.index.query(lo, hi, &io);
                });
            }
        });
        let cold = opened.real_fetches();
        assert_eq!(
            cold, union,
            "{name} {backend:?} at {t} threads: cold real reads must equal \
             the workload's distinct-block charge"
        );
        // Warm QPS on the now-hot pool.
        let rounds = e15_calibrate(&opened.index, &queries, 120);
        let mut best = 0f64;
        for _ in 0..3 {
            best = best.max(e15_qps(&opened.index, &queries, t, rounds));
        }
        let stats = opened.pool_stats();
        assert_eq!(stats.grown, 0, "{name}: ample pool must never grow");
        rows.push((t, cold, union, best));
    }
    rows
}

/// E15 — the concurrent read path: one opened index (File and Mmap
/// backends) shared by 1→8 query threads. Cold-cache real reads equal
/// the workload's distinct-block charge at every thread count (also
/// pinned by `tests/concurrent_read.rs`); warm-pool QPS scales with
/// threads up to the machine's parallelism (this container may have
/// fewer cores than the sweep's top end — the table reports
/// `available_parallelism` so the scaling column is read against it).
pub fn e15() {
    e15_sweep(&[1, 2, 4, 8]);
}

/// [`e15`] with an explicit thread sweep (the CI smoke run caps at 4).
pub fn e15_sweep(threads: &[usize]) {
    use psi_query::{ConjunctiveQuery, IndexedTable, Predicate};
    head(
        "E15",
        "concurrent read path: warm-pool QPS scaling, cold reads == union charge per thread count",
    );
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("available parallelism: {cores} (QPS scales only up to this)");
    let n = 1usize << 16;
    let sigma = 256u32;
    let s = wl::zipf(n, sigma, 1.1, 77);
    let dir = std::env::temp_dir().join("psi_bench_concurrent");
    std::fs::create_dir_all(&dir).expect("bench store dir");
    hdr(&[
        "index",
        "backend",
        "threads",
        "QPS",
        "speedup",
        "cold real",
        "union",
        "verdict",
    ]);
    let sweep = |name: &str, rows: Vec<(usize, u64, u64, f64)>, backend: psi_store::Backend| {
        let base = rows.first().map(|r| r.3).unwrap_or(1.0);
        for (t, cold, union, qps) in rows {
            row(&[
                name.into(),
                format!("{backend:?}"),
                t.to_string(),
                format!("{qps:.0}"),
                format!("{:.2}x", qps / base),
                cold.to_string(),
                union.to_string(),
                "ok".into(),
            ]);
        }
    };
    {
        let index = OptimalIndex::build(&s, sigma, IoConfig::default());
        let path = dir.join("optimal.psi");
        psi_store::save(&index, &path).expect("save");
        for backend in [psi_store::Backend::File, psi_store::Backend::Mmap] {
            sweep(
                "optimal",
                e15_family::<OptimalIndex>("optimal", &path, backend, sigma, threads),
                backend,
            );
        }
    }
    {
        let index = CompressedScanIndex::build(&s, sigma, IoConfig::default());
        let path = dir.join("compressed_scan.psi");
        psi_store::save(&index, &path).expect("save");
        for backend in [psi_store::Backend::File, psi_store::Backend::Mmap] {
            sweep(
                "compressed_scan",
                e15_family::<CompressedScanIndex>(
                    "compressed_scan",
                    &path,
                    backend,
                    sigma,
                    threads,
                ),
                backend,
            );
        }
    }
    // Batch executor: the same parallelism through the conjunctive layer
    // (in-RAM indexes; the scheduling win, decoupled from storage).
    println!("\nbatch executor (psi-query, in-RAM optimal indexes, 3-attribute table):");
    hdr(&["threads", "QPS", "speedup", "determinism"]);
    let table = wl::Table::generate(
        n,
        &[
            wl::ColumnSpec {
                name: "a".into(),
                sigma: 256,
                dist: wl::Dist::Zipf(1.1),
            },
            wl::ColumnSpec {
                name: "b".into(),
                sigma: 64,
                dist: wl::Dist::Zipf(0.9),
            },
            wl::ColumnSpec {
                name: "c".into(),
                sigma: 1024,
                dist: wl::Dist::Zipf(1.3),
            },
        ],
        15,
    );
    let indexed = IndexedTable::build(&table, |sy, g| {
        Box::new(OptimalIndex::build(sy, g, IoConfig::default()))
    });
    let batch: Vec<ConjunctiveQuery> = (0..24u32)
        .map(|i| {
            Predicate::and([
                Predicate::range("a", (i * 11) % 200, (i * 11) % 200 + 30),
                Predicate::range("b", (i * 7) % 48, (i * 7) % 48 + 10),
                Predicate::range("c", (i * 41) % 900, (i * 41) % 900 + 60),
            ])
            .normalize()
            .expect("conjunctive")
        })
        .collect();
    let reference = indexed.execute_batch(&batch, 1).expect("sequential");
    let mut base = None;
    for &t in threads {
        let start = std::time::Instant::now();
        let rounds = 5usize;
        let mut last = None;
        for _ in 0..rounds {
            last = Some(indexed.execute_batch(&batch, t).expect("batch"));
        }
        let qps = (batch.len() * rounds) as f64 / start.elapsed().as_secs_f64();
        let base = *base.get_or_insert(qps);
        let same = last
            .expect("ran")
            .iter()
            .zip(&reference)
            .all(|(p, s)| p.rows.to_vec() == s.rows.to_vec() && p.io == s.io);
        assert!(same, "batch at {t} threads must match sequential");
        row(&[
            t.to_string(),
            format!("{qps:.0}"),
            format!("{:.2}x", qps / base),
            "identical".into(),
        ]);
    }
}

// ---------------------------------------------------------------------------
// E16 — the durable write path

/// Minimal many-extent single-volume family for measuring extent-granular
/// checkpoint cost below the real index families (whose dirty sets are
/// coarse: the semi-dynamic engine keeps all node records in one tree
/// extent, and the fully dynamic family's meta carries its O(n) routing
/// state).
pub struct ExtentFarm {
    /// The payload volume; each extent is independently rewritable.
    pub disk: psi_io::Disk,
}

impl psi_store::PersistIndex for ExtentFarm {
    const TAG: &'static str = "bench_extent_farm";

    fn write_meta(&self, _out: &mut psi_store::MetaBuf) {}

    fn disks(&self) -> Vec<&psi_io::Disk> {
        vec![&self.disk]
    }

    fn from_parts(
        _meta: &mut psi_store::MetaCursor,
        disks: Vec<psi_io::Disk>,
    ) -> Result<Self, psi_store::StoreError> {
        Ok(ExtentFarm {
            disk: psi_store::single_volume(disks, "extent farm")?,
        })
    }
}

/// Builds an [`ExtentFarm`] of `extents` extents, `writes` 48-bit values
/// each.
pub fn farm_build(extents: usize, writes: usize) -> ExtentFarm {
    let mut disk = psi_io::Disk::new(IoConfig::with_block_bits(256));
    let io = IoSession::untracked();
    for i in 0..extents {
        let ext = disk.alloc();
        let mut w = disk.writer(ext, &io);
        for j in 0..writes {
            w.write_bits((i as u64) << 32 | j as u64, 48);
        }
    }
    ExtentFarm { disk }
}

/// Rewrites extent `i` of the farm in place, dirtying exactly it.
pub fn farm_rewrite(farm: &mut ExtentFarm, i: usize, salt: u64) {
    let io = IoSession::untracked();
    let ext = psi_io::ExtentId(i as u32);
    let words = farm.disk.extent_words(ext).len();
    farm.disk.truncate(ext, 0);
    let mut w = farm.disk.writer(ext, &io);
    for j in 0..(words * 64 / 48) {
        w.write_bits(
            (salt ^ ((i as u64) << 32 | j as u64)) & 0xFFFF_FFFF_FFFF,
            48,
        );
    }
}

/// E16 — psi-wal: group commit amortizes the sync, incremental
/// checkpoints write (roughly) the dirty set, recovery time scales with
/// the log tail. Full-size run.
pub fn e16() {
    e16_run(6_000, &[1, 8, 64, 256], &[0, 1_000, 4_000]);
}

/// [`e16`] with explicit sizes (the CI smoke run shrinks all three).
pub fn e16_run(ops: usize, batches: &[usize], tails: &[usize]) {
    use psi_api::MutOp;
    use psi_wal::{recover, Durable, DurableOptions};

    head(
        "E16",
        "durable write path: group commit amortizes fsync; incremental checkpoint < full save; recovery ~ tail length",
    );
    let sigma = 64u32;
    let root = std::env::temp_dir().join("psi_bench_durable");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("bench durable dir");
    let cfg = IoConfig::default();
    let io = IoSession::untracked();

    // --- group-commit latency vs batch size -----------------------------
    // One write + one sync per batch: per-op latency must fall (or at
    // worst flatten) as the batch grows.
    hdr(&["batch", "ops", "commits", "ns/op", "vs batch=1"]);
    let mut per_op = Vec::new();
    for &batch in batches {
        let dir = root.join(format!("commit_b{batch}"));
        let idx = SemiDynamicIndex::new(sigma, cfg);
        let mut d = Durable::create(
            &dir,
            idx,
            DurableOptions {
                group_commit_ops: batch,
                ..DurableOptions::default()
            },
        )
        .expect("create durable");
        let start = std::time::Instant::now();
        for i in 0..ops {
            d.apply(
                &MutOp::Append {
                    symbol: (i as u32 * 2_654_435_761) >> 16 & (sigma - 1),
                },
                &io,
            )
            .expect("apply");
        }
        d.commit().expect("commit");
        let ns = start.elapsed().as_nanos() as f64 / ops as f64;
        let commits = d.wal_commits();
        per_op.push(ns);
        row(&[
            batch.to_string(),
            ops.to_string(),
            commits.to_string(),
            format!("{ns:.0}"),
            format!("{:.2}x", ns / per_op[0]),
        ]);
    }
    if batches.len() > 1 {
        assert!(
            per_op.last().unwrap() < per_op.first().unwrap(),
            "group commit must amortize the per-op sync cost"
        );
    }

    // --- incremental checkpoint vs full save ----------------------------
    // (a) Real family: the checkpoint floor. With an empty dirty set a
    // checkpoint writes only extent table + meta + superblock slot; the
    // burst rounds then show the engine's actual dirty granularity (the
    // semi-dynamic engine keeps all node records in one tree extent, so
    // even a tiny burst dirties most of the payload, and relocated dead
    // space compacts every other round).
    let n = 1usize << 14;
    let s = wl::zipf(n, sigma, 1.1, 77);
    let dir = root.join("ckpt");
    let mut idx = SemiDynamicIndex::new(sigma, cfg);
    for &sym in &s {
        idx.append(sym, &io);
    }
    let mut d = Durable::create(&dir, idx, DurableOptions::default()).expect("create durable");
    let full_bytes = std::fs::metadata(dir.join(psi_wal::CHECKPOINT_FILE))
        .expect("checkpoint meta")
        .len();
    hdr(&["burst", "ckpt bytes", "full bytes", "ratio", "compacted"]);
    for &burst in &[0usize, 4, 4] {
        for i in 0..burst {
            d.apply(
                &MutOp::Append {
                    symbol: (i as u32 * 40_503) >> 4 & (sigma - 1),
                },
                &io,
            )
            .expect("apply");
        }
        let report = d.checkpoint().expect("checkpoint");
        if burst == 0 {
            assert!(
                report.bytes_written < full_bytes,
                "an empty dirty set must checkpoint in fewer bytes than a \
                 full save ({} vs {full_bytes})",
                report.bytes_written
            );
        }
        row(&[
            burst.to_string(),
            report.bytes_written.to_string(),
            full_bytes.to_string(),
            f(report.bytes_written as f64 / full_bytes as f64),
            report.compacted.to_string(),
        ]);
    }
    drop(d);

    // (b) Extent-granular cost, isolated on a many-extent volume: 2 of
    // 64 dirty extents checkpoint in a fraction of the full save.
    hdr(&[
        "dirty extents",
        "ckpt bytes",
        "full bytes",
        "ratio",
        "verdict",
    ]);
    let mut farm = farm_build(64, 2000);
    let farm_path = root.join("farm.ck");
    let (mut cp, created) =
        psi_store::CheckpointFile::create(&farm_path, &farm, &[], 1).expect("farm create");
    for &dirty in &[2usize, 8] {
        for k in 0..dirty {
            farm_rewrite(&mut farm, k * 63 / dirty.max(1), 0x9E37 + k as u64);
        }
        let report = cp.update(&farm, &[]).expect("farm update");
        assert!(
            report.bytes_written * 4 < created.bytes_written,
            "a sparse dirty set must checkpoint in a fraction of the full save \
             ({} vs {})",
            report.bytes_written,
            created.bytes_written
        );
        row(&[
            dirty.to_string(),
            report.bytes_written.to_string(),
            created.bytes_written.to_string(),
            f(report.bytes_written as f64 / created.bytes_written as f64),
            "ok".into(),
        ]);
    }

    // --- recovery time vs log tail length -------------------------------
    hdr(&["tail ops", "replayed", "recover ms", "verdict"]);
    for &tail in tails {
        let dir = root.join(format!("recover_t{tail}"));
        let idx = FullyDynamicIndex::build(&s, sigma, cfg);
        let mut d = Durable::create(&dir, idx, DurableOptions::default()).expect("create durable");
        for i in 0..tail {
            d.apply(
                &MutOp::Change {
                    pos: ((i * 48_271) % n) as u64,
                    symbol: (i as u32).wrapping_mul(69_621) >> 7 & (sigma - 1),
                },
                &io,
            )
            .expect("apply");
        }
        d.commit().expect("commit");
        drop(d);
        let start = std::time::Instant::now();
        let (_, report) =
            recover::<FullyDynamicIndex>(&dir, DurableOptions::default()).expect("recover");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(report.replayed, tail, "the whole committed tail replays");
        row(&[
            tail.to_string(),
            report.replayed.to_string(),
            format!("{ms:.2}"),
            "ok".into(),
        ]);
    }
}

// ---------------------------------------------------------------------------
// E17 — the fault-tolerant read path

/// Flips one payload byte in every block of every live extent of the
/// store file at `path` (header and metadata pages untouched, so the file
/// still opens), guaranteeing that any verified payload fetch detects the
/// damage. Returns the number of blocks corrupted.
pub fn corrupt_store_payload(path: &std::path::Path) -> u64 {
    use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
    let (_, header) = psi_store::format::read_header(path).expect("read store header");
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .expect("open store file for corruption");
    let mut corrupted = 0;
    for volume in &header.volumes {
        let page = volume.page_bytes();
        for ext in &volume.extents {
            if ext.freed || ext.file_off == u64::MAX {
                continue;
            }
            let blocks = ext.bit_len.div_ceil(volume.config.block_bits).max(1);
            for b in 0..blocks {
                let off = ext.file_off + b * page + 3;
                let mut byte = [0u8; 1];
                file.seek(SeekFrom::Start(off)).expect("seek");
                file.read_exact(&mut byte).expect("read payload byte");
                byte[0] ^= 0xFF;
                file.seek(SeekFrom::Start(off)).expect("seek back");
                file.write_all(&byte).expect("flip payload byte");
                corrupted += 1;
            }
        }
    }
    file.sync_all().expect("sync corruption");
    corrupted
}

/// E17 — the fault-tolerant read path: verified fetches are
/// charge-identical to raw ones (the checksum runs only at cold
/// fault-in, never on warm hits), a quarantined attribute degrades to an
/// exact table-scan fallback, and an online rebuild returns the plan to
/// healthy cost. Full-size run.
pub fn e17() {
    e17_run(1 << 16, 4_000);
}

/// [`e17`] with explicit sizes (the CI smoke run shrinks both).
pub fn e17_run(n: usize, people: usize) {
    use psi_query::{IndexedColumn, IndexedTable, Predicate};
    use psi_store::{open, save, Backend, OpenOptions};

    head(
        "E17",
        "fault-tolerant reads: verified fetch charge-identical to raw, checksum only at cold fault-in; degraded plan exact; rebuild restores healthy cost",
    );
    let root = std::env::temp_dir().join("psi_bench_read_faults");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("bench read-faults dir");
    let cfg = IoConfig::default();

    // --- verified-fetch cold cost, ns/block, vs raw ---------------------
    // Simulated charges and real fetch counts must be bit-identical in
    // both modes; the checksum may only show up as cold wall-clock.
    let sigma = 256u32;
    let s = wl::zipf(n, sigma, 1.0, 21);
    let idx = OptimalIndex::build(&s, sigma, cfg);
    let path = root.join("verified.psi");
    save(&idx, &path).expect("save optimal");
    let queries: Vec<(u32, u32)> = (0..16).map(|i| (i * 16, i * 16 + 15)).collect();

    hdr(&["mode", "cold ns/blk", "blocks", "charges", "warm fetches"]);
    let mut per_mode = Vec::new();
    for (mode, verify) in [("raw", false), ("verified", true)] {
        let rounds = 4u32;
        let mut ns_total = 0f64;
        let mut fetches = 0u64;
        let mut charges = 0u64;
        let mut warm_new = 0u64;
        for _ in 0..rounds {
            let opened = open::<OptimalIndex>(
                &path,
                &OpenOptions {
                    backend: Backend::File,
                    pool_blocks: 1 << 16,
                    retry: None,
                    verify,
                },
            )
            .expect("open optimal");
            let start = std::time::Instant::now();
            for &(lo, hi) in &queries {
                let io = IoSession::new();
                let _ = opened.index.query(lo, hi, &io);
                charges += io.stats().reads;
            }
            ns_total += start.elapsed().as_nanos() as f64;
            fetches += opened.real_fetches();
            // Warm replay: every block is pooled, nothing re-verifies.
            let before = opened.real_fetches();
            for &(lo, hi) in &queries {
                let io = IoSession::new();
                let _ = opened.index.query(lo, hi, &io);
            }
            warm_new += opened.real_fetches() - before;
        }
        per_mode.push((fetches, charges, warm_new));
        row(&[
            mode.to_string(),
            f(ns_total / fetches as f64),
            (fetches / u64::from(rounds)).to_string(),
            (charges / u64::from(rounds) / 2).to_string(),
            warm_new.to_string(),
        ]);
    }
    assert_eq!(
        (per_mode[0].0, per_mode[0].1),
        (per_mode[1].0, per_mode[1].1),
        "verification must not change fetch counts or simulated charges"
    );
    assert_eq!(
        per_mode[0].2 + per_mode[1].2,
        0,
        "warm hits must never fault (or re-verify) anything"
    );

    // --- degraded vs healthy conjunctive plan ---------------------------
    let table = wl::people_table(people, 7);
    let predicate = Predicate::and([
        Predicate::point("marital_status", 1),
        Predicate::point("sex", 0),
        Predicate::range("age", 30, 35),
    ]);
    let want = predicate.naive_rows(&table);
    let healthy = IndexedTable::build(&table, |sy, g| {
        Box::new(OptimalIndex::build(sy, g, cfg)) as Box<dyn SecondaryIndex>
    });
    for col in &table.columns {
        save(
            &OptimalIndex::build(&col.data, col.sigma, cfg),
            root.join(format!("col_{}.psi", col.name)),
        )
        .expect("save column");
    }
    corrupt_store_payload(&root.join("col_age.psi"));
    let columns = table
        .columns
        .iter()
        .map(|col| IndexedColumn {
            name: col.name.clone(),
            sigma: col.sigma,
            index: Box::new(
                open::<OptimalIndex>(
                    &root.join(format!("col_{}.psi", col.name)),
                    &OpenOptions {
                        backend: Backend::File,
                        pool_blocks: 1 << 14,
                        retry: None,
                        verify: true,
                    },
                )
                .expect("open column")
                .index,
            ) as Box<dyn SecondaryIndex>,
        })
        .collect();
    let mut degraded = IndexedTable::from_columns(columns);
    for col in &table.columns {
        degraded
            .attach_column_data(&col.name, col.data.clone())
            .expect("attach source");
    }
    // First execution trips the verified fetch and quarantines the age
    // extent; the steady state below plans around it up front.
    let tripped = degraded.execute(&predicate).expect("degraded execute");
    assert_eq!(tripped.rows.to_vec(), want, "degraded rows must stay exact");
    assert!(
        tripped.degraded.contains(&"age".to_string()),
        "corrupted column must degrade"
    );

    hdr(&["plan", "io reads", "ns/query", "degraded", "rows"]);
    let healthy_out = healthy.execute(&predicate).expect("healthy execute");
    let bench_plan = |label: &str, t: &IndexedTable| {
        let rounds = 20u32;
        let start = std::time::Instant::now();
        let mut out = None;
        for _ in 0..rounds {
            out = Some(t.execute(&predicate).expect("execute"));
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(rounds);
        let out = out.expect("ran");
        assert_eq!(out.rows.to_vec(), want, "{label} rows must stay exact");
        row(&[
            label.to_string(),
            out.io.reads.to_string(),
            format!("{ns:.0}"),
            out.degraded.len().to_string(),
            out.rows.cardinality().to_string(),
        ]);
        out
    };
    bench_plan("healthy", &healthy);
    bench_plan("degraded", &degraded);

    // --- online rebuild restores healthy cost ---------------------------
    degraded
        .rebuild_attribute("age", |sy, g| {
            Box::new(OptimalIndex::build(sy, g, cfg)) as Box<dyn SecondaryIndex>
        })
        .expect("rebuild");
    let rebuilt = bench_plan("rebuilt", &degraded);
    assert!(rebuilt.degraded.is_empty(), "rebuild must clear quarantine");
    assert_eq!(
        rebuilt.io, healthy_out.io,
        "post-rebuild I/O must equal the healthy baseline"
    );
}

/// E18 — psi-serve under open-loop load: a live server behind the wire
/// protocol, Poisson arrivals at fixed offered rates, completion-time
/// percentiles measured against the *scheduled* arrival (so queueing
/// delay counts), and the typed shed rate from admission control.
/// Full-size run; returns the snapshot rows for `BENCH_NNNN.json`.
///
/// On one core the honest claim is latency under load *shaping*, not
/// thread scaling: admission control bounds the queue, so the tail grows
/// with offered load until shedding kicks in instead of growing without
/// bound.
pub fn e18() -> Vec<jsonout::JsonResult> {
    e18_run(4_000, &[500, 2_000, 8_000], 3.0)
}

/// [`e18`] with explicit sizes (the CI smoke run shrinks all three).
///
/// Emitted rows, all diffed lower-is-better by `compare_bench`:
/// `serve/open_loop/q{qps}/p50|p99|p999` (completion latency in ns) and
/// `serve/open_loop/q{qps}/shed_permille` (requests shed per thousand,
/// in `ns_per_iter`'s slot — a rate, not a time, but lower is better in
/// the same way).
pub fn e18_run(people: usize, qps_targets: &[u64], seconds: f64) -> Vec<jsonout::JsonResult> {
    use psi_query::{ConjunctiveQuery, IndexedTable, Predicate};
    use psi_serve::wire::ErrorCode;
    use psi_serve::{Client, ServeConfig, Server};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    head(
        "E18",
        "psi-serve open-loop: Poisson arrivals at fixed offered QPS; p50/p99/p999 completion latency and typed shed rate",
    );
    let cfg = IoConfig::default();
    let table = wl::people_table(people, 7);
    let indexed = IndexedTable::build(&table, |sy, g| {
        Box::new(OptimalIndex::build(sy, g, cfg)) as Box<dyn SecondaryIndex>
    });
    let server = Server::serve(
        Arc::new(indexed),
        ServeConfig {
            batch_window: 16,
            ..ServeConfig::default()
        },
    )
    .expect("serve");
    let addr = server.addr().expect("tcp addr");

    // Deterministic query mix: selective age ranges, sex+age
    // conjunctions, and broad marital-status points.
    let mut rng = StdRng::seed_from_u64(18);
    let pool: Vec<ConjunctiveQuery> = (0..256)
        .map(|_| {
            let p = match rng.gen_range(0..3u32) {
                0 => {
                    let lo = rng.gen_range(0..120u32);
                    Predicate::range("age", lo, (lo + rng.gen_range(0..8u32)).min(127))
                }
                1 => Predicate::and([
                    Predicate::point("sex", rng.gen_range(0..2u32)),
                    Predicate::range("age", 30, 35),
                ]),
                _ => Predicate::point("marital_status", rng.gen_range(0..4u32)),
            };
            p.normalize().expect("normalize")
        })
        .collect();

    hdr(&[
        "offered qps",
        "sent",
        "p50 us",
        "p99 us",
        "p999 us",
        "shed o/oo",
    ]);
    let mut out = Vec::new();
    let mut total_sent = 0u64;
    for &qps in qps_targets {
        let n = ((qps as f64) * seconds).round().max(1.0) as usize;
        total_sent += n as u64;
        // Open-loop Poisson arrivals: exponential inter-arrival gaps at
        // rate `qps`, fixed up front so a slow server cannot slow the
        // arrival process down (that would be closed-loop coordination).
        let mut gap_rng = StdRng::seed_from_u64(qps ^ 0x5EED);
        let mut t = 0.0f64;
        let schedule: Arc<Vec<Duration>> = Arc::new(
            (0..n)
                .map(|_| {
                    let u: f64 = gap_rng.gen_range(1e-12..1.0);
                    t += -u.ln() / qps as f64;
                    Duration::from_secs_f64(t)
                })
                .collect(),
        );
        let (mut tx, mut rx) = Client::connect(addr).expect("connect").split();
        let start = Instant::now();
        let sender = std::thread::spawn({
            let schedule = Arc::clone(&schedule);
            let pool = pool.clone();
            move || {
                for (i, due) in schedule.iter().enumerate() {
                    loop {
                        let now = start.elapsed();
                        if now >= *due {
                            break;
                        }
                        // Sleep the bulk, spin the last stretch — a 1 ms
                        // oversleep at 8 kqps is 8 requests of skew.
                        match (*due - now).checked_sub(Duration::from_micros(300)) {
                            Some(bulk) => std::thread::sleep(bulk),
                            None => std::hint::spin_loop(),
                        }
                    }
                    tx.send(i as u64, &pool[i % pool.len()]).expect("send");
                }
            }
        });
        let mut latencies_ns: Vec<f64> = Vec::with_capacity(n);
        let mut shed = 0u64;
        let mut unexpected = 0u64;
        for _ in 0..n {
            let resp = rx
                .recv()
                .expect("recv")
                .expect("server closed with requests outstanding");
            let done = start.elapsed();
            let due = schedule[usize::try_from(resp.id).expect("id fits")];
            match &resp.body {
                Ok(_) => latencies_ns.push(done.saturating_sub(due).as_nanos() as f64),
                Err(e) if e.code == ErrorCode::Overloaded => shed += 1,
                Err(_) => unexpected += 1,
            }
        }
        sender.join().expect("sender thread");
        assert_eq!(unexpected, 0, "only Overloaded errors are expected");
        latencies_ns.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pct = |q: f64| -> f64 {
            if latencies_ns.is_empty() {
                return 0.0;
            }
            latencies_ns[((latencies_ns.len() - 1) as f64 * q).round() as usize]
        };
        let (p50, p99, p999) = (pct(0.50), pct(0.99), pct(0.999));
        let shed_permille = 1000.0 * shed as f64 / n as f64;
        row(&[
            qps.to_string(),
            n.to_string(),
            f(p50 / 1e3),
            f(p99 / 1e3),
            f(p999 / 1e3),
            f(shed_permille),
        ]);
        for (tag, v) in [("p50", p50), ("p99", p99), ("p999", p999)] {
            out.push(jsonout::JsonResult {
                bench: format!("serve/open_loop/q{qps}/{tag}"),
                ns_per_iter: v,
                ..Default::default()
            });
        }
        out.push(jsonout::JsonResult {
            bench: format!("serve/open_loop/q{qps}/shed_permille"),
            ns_per_iter: shed_permille,
            ..Default::default()
        });
    }
    let stats = server.shutdown();
    assert_eq!(
        stats.admitted + stats.shed,
        total_sent,
        "every request must be admitted or shed"
    );
    assert_eq!(
        stats.protocol_errors, 0,
        "load generator speaks the protocol"
    );
    out
}

/// E19 — observability overhead: the always-on psi-obs instrumentation
/// measured against itself. Two arms on the E18 serve workload — metrics
/// recording on (the shipped default) vs. off (`psi_obs::set_enabled`,
/// same binary, same tables) — comparing warm-path closed-loop QPS and
/// open-loop p50/p99; then a durable-write run publishing the WAL's
/// group-commit batch-size and fsync-latency histograms. Full-size run;
/// returns the `obs/*` snapshot rows for `BENCH_NNNN.json`.
pub fn e19() -> Vec<jsonout::JsonResult> {
    e19_run(4_000, 2_000, 2.5)
}

/// [`e19`] with explicit sizes (the CI smoke run shrinks all three).
///
/// Emitted rows: `obs/serve/{arm}/qps` (closed-loop throughput, diffed
/// higher-is-better), `obs/serve/{arm}/p50|p99` (open-loop completion
/// latency, ns), and `obs/wal/fsync_ns/p50|p99` + `obs/wal/commit_batch/mean`
/// from the durable-write run. The histogram-derived `obs/*` rows are
/// held to `compare_bench`'s wider TAIL_THRESHOLD.
///
/// The gate: instrumented best-of-N closed-loop QPS within 20% of
/// stripped (both arms alternate trials against one shared server, so
/// machine-wide noise cancels) — far looser than the ~0% a quiet
/// machine shows, but tight enough to catch an accidental
/// per-decoded-word instrument (the 15-30% class of mistake this
/// workspace's I/O-session design note warns about). The open-loop p99
/// is gated only against egregious blowup; `compare_bench` tracks it
/// across PRs at the TAIL bar.
pub fn e19_run(people: usize, qps: u64, seconds: f64) -> Vec<jsonout::JsonResult> {
    use psi_query::{ConjunctiveQuery, IndexedTable, Predicate};
    use psi_serve::wire::ErrorCode;
    use psi_serve::{Client, ServeConfig, Server};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    head(
        "E19",
        "observability overhead: metrics-on vs metrics-off on the E18 serve workload (same binary); WAL fsync/batch histograms from a durable-write run",
    );
    let cfg = IoConfig::default();
    let table = wl::people_table(people, 7);
    let mut rng = StdRng::seed_from_u64(19);
    let pool: Vec<ConjunctiveQuery> = (0..256)
        .map(|_| {
            let p = match rng.gen_range(0..3u32) {
                0 => {
                    let lo = rng.gen_range(0..120u32);
                    Predicate::range("age", lo, (lo + rng.gen_range(0..8u32)).min(127))
                }
                1 => Predicate::and([
                    Predicate::point("sex", rng.gen_range(0..2u32)),
                    Predicate::range("age", 30, 35),
                ]),
                _ => Predicate::point("marital_status", rng.gen_range(0..4u32)),
            };
            p.normalize().expect("normalize")
        })
        .collect();

    // One server hosts both arms: `psi_obs::set_enabled` gates every
    // record call at runtime, so toggling it between passes compares the
    // arms on identical threads, caches, and index state — separate
    // servers would measure placement luck as "overhead".
    let indexed = IndexedTable::build(&table, |sy, g| {
        Box::new(OptimalIndex::build(sy, g, cfg)) as Box<dyn SecondaryIndex>
    });
    let server = Server::serve(
        Arc::new(indexed),
        ServeConfig {
            batch_window: 16,
            ..ServeConfig::default()
        },
    )
    .expect("serve");
    let addr = server.addr().expect("tcp addr");

    // --- closed-loop warm path: a pipelined window kept under the
    // per-connection admission cap (a shed here would be a bug, not load
    // shaping), measuring completions/sec. The loop is a loopback
    // ping-pong across four threads, so any single trial is at the mercy
    // of the scheduler; the arms alternate over several trials and each
    // keeps its best — paired best-of-N cancels the machine-wide noise
    // that a one-shot A/B reads as fake overhead (of either sign).
    let m = (((qps as f64) * seconds).round() as usize).max(20_000);
    let closed_loop = |k: usize| -> f64 {
        let mut client = Client::connect(addr).expect("connect");
        let window = 32usize;
        let start = Instant::now();
        let (mut sent, mut done) = (0usize, 0usize);
        while done < k {
            while sent < k && sent - done < window {
                client
                    .send(sent as u64, &pool[sent % pool.len()])
                    .expect("send");
                sent += 1;
            }
            let resp = client.recv().expect("recv").expect("server closed");
            assert!(
                resp.body.is_ok(),
                "closed loop under the admission cap must never shed"
            );
            done += 1;
        }
        k as f64 / start.elapsed().as_secs_f64()
    };
    // Same-shape warmup (batched pipelined rounds, not serial calls),
    // discarded.
    let _ = closed_loop(m / 4);
    let mut best_qps = [0.0f64; 2];
    for _trial in 0..3 {
        for (a, on) in [(0usize, true), (1usize, false)] {
            psi_obs::set_enabled(on);
            best_qps[a] = best_qps[a].max(closed_loop(m));
        }
    }

    hdr(&["arm", "closed qps", "p50 us", "p99 us", "shed o/oo"]);
    let mut out = Vec::new();
    // One open-loop pass at the offered rate, as E18 runs it; returns
    // (p50 ns, p99 ns, shed count, n).
    let open_pass = || -> (f64, f64, u64, usize) {
        let n = ((qps as f64) * seconds).round().max(1.0) as usize;
        let mut gap_rng = StdRng::seed_from_u64(qps ^ 0x0B5);
        let mut t = 0.0f64;
        let schedule: Arc<Vec<Duration>> = Arc::new(
            (0..n)
                .map(|_| {
                    let u: f64 = gap_rng.gen_range(1e-12..1.0);
                    t += -u.ln() / qps as f64;
                    Duration::from_secs_f64(t)
                })
                .collect(),
        );
        let (mut tx, mut rx) = Client::connect(addr).expect("connect").split();
        let start = Instant::now();
        let sender = std::thread::spawn({
            let schedule = Arc::clone(&schedule);
            let pool = pool.clone();
            move || {
                for (i, due) in schedule.iter().enumerate() {
                    loop {
                        let now = start.elapsed();
                        if now >= *due {
                            break;
                        }
                        match (*due - now).checked_sub(Duration::from_micros(300)) {
                            Some(bulk) => std::thread::sleep(bulk),
                            None => std::hint::spin_loop(),
                        }
                    }
                    tx.send(i as u64, &pool[i % pool.len()]).expect("send");
                }
            }
        });
        let mut latencies_ns: Vec<f64> = Vec::with_capacity(n);
        let mut shed = 0u64;
        for _ in 0..n {
            let resp = rx.recv().expect("recv").expect("server closed");
            let done_at = start.elapsed();
            let due = schedule[usize::try_from(resp.id).expect("id fits")];
            match &resp.body {
                Ok(_) => latencies_ns.push(done_at.saturating_sub(due).as_nanos() as f64),
                Err(e) if e.code == ErrorCode::Overloaded => shed += 1,
                Err(e) => panic!("unexpected error under open loop: {e}"),
            }
        }
        sender.join().expect("sender");
        latencies_ns.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pct = |q: f64| -> f64 {
            if latencies_ns.is_empty() {
                return 0.0;
            }
            latencies_ns[((latencies_ns.len() - 1) as f64 * q).round() as usize]
        };
        (pct(0.50), pct(0.99), shed, n)
    };
    // (closed-loop qps, open-loop p99 ns) per arm, instrumented first.
    let mut arms = Vec::new();
    for (a, (arm, on)) in [("instrumented", true), ("stripped", false)]
        .into_iter()
        .enumerate()
    {
        psi_obs::set_enabled(on);
        let qps_closed = best_qps[a];
        // Best-of-2 open-loop passes per arm: at this offered rate one
        // ~25ms scheduler stall of the batcher thread backs up ~50
        // queued requests — which IS the p99 over these sample counts —
        // so a single pass reads one stall as a 10x tail "overhead" of
        // whichever arm caught it. Keeping the better pass cancels
        // single-stall luck, same as the closed loop's paired best-of-N.
        let (mut p50, mut p99, mut shed, mut n) = open_pass();
        let second = open_pass();
        if second.1 < p99 {
            (p50, p99, shed, n) = second;
        }
        row(&[
            arm.to_string(),
            f(qps_closed),
            f(p50 / 1e3),
            f(p99 / 1e3),
            f(1000.0 * shed as f64 / n as f64),
        ]);
        out.push(jsonout::JsonResult {
            bench: format!("obs/serve/{arm}/qps"),
            ns_per_iter: 1e9 / qps_closed,
            qps: qps_closed,
            ..Default::default()
        });
        for (tag, v) in [("p50", p50), ("p99", p99)] {
            out.push(jsonout::JsonResult {
                bench: format!("obs/serve/{arm}/{tag}"),
                ns_per_iter: v,
                ..Default::default()
            });
        }
        arms.push((qps_closed, p99));
    }
    server.shutdown();
    psi_obs::set_enabled(true);
    let (qps_on, p99_on) = arms[0];
    let (qps_off, p99_off) = arms[1];
    let qps_overhead = qps_off / qps_on - 1.0;
    println!(
        "  overhead (instrumented vs stripped): qps {:+.1}%, p99 {:+.1}%",
        100.0 * (qps_on / qps_off - 1.0),
        100.0 * (p99_on / p99_off.max(1.0) - 1.0),
    );
    assert!(
        qps_overhead < 0.20,
        "metrics recording costs {:.1}% closed-loop throughput — per-event \
         instruments must be noise, not a tax (is something recording per \
         decoded word?)",
        100.0 * qps_overhead
    );
    // The open-loop tail is a single-run order statistic (compare_bench
    // tracks it across PRs at the TAIL bar); gate only the egregious. The
    // absolute slack must cover one scheduler stall on this 1-core box —
    // E18 shows 10-35ms p99s at its *lightest* load, so anything under
    // ~15ms is indistinguishable from a lucky/unlucky arm.
    assert!(
        p99_on < p99_off.max(1.0) * 3.0 + 15_000_000.0,
        "instrumented p99 {p99_on:.0}ns vs stripped {p99_off:.0}ns"
    );

    // --- WAL fsync/batch histograms from a durable-write run ------------
    {
        use psi_api::MutOp;
        use psi_wal::{wal_metrics, Durable, DurableOptions};
        let root = std::env::temp_dir().join("psi_bench_obs_wal");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("bench obs wal dir");
        // Bench-harness reset: isolate this run's samples from whatever
        // the process recorded earlier (the handles stay live).
        let m = wal_metrics();
        m.fsync_ns.reset();
        m.commit_batch.reset();
        let sigma = 64u32;
        let io = IoSession::untracked();
        let mut d = Durable::create(
            root.join("wal"),
            SemiDynamicIndex::new(sigma, cfg),
            DurableOptions {
                group_commit_ops: 32,
                ..DurableOptions::default()
            },
        )
        .expect("create durable");
        let ops = 2_048usize;
        for i in 0..ops {
            d.apply(
                &MutOp::Append {
                    symbol: (i as u32 * 2_654_435_761) >> 16 & (sigma - 1),
                },
                &io,
            )
            .expect("apply");
        }
        d.commit().expect("commit");
        drop(d);
        let fsync = m.fsync_ns.snapshot();
        let batch = m.commit_batch.snapshot();
        assert_eq!(
            batch.count, fsync.count,
            "one batch-size sample per group commit"
        );
        assert!(
            batch.mean() >= 31.0,
            "group commit of 32 must fill its batches (mean {:.1})",
            batch.mean()
        );
        hdr(&["wal histogram", "n", "mean", "p50", "p99"]);
        for (name, h) in [("fsync_ns", &fsync), ("commit_batch", &batch)] {
            row(&[
                name.to_string(),
                h.count.to_string(),
                f(h.mean()),
                h.quantile(0.50).to_string(),
                h.quantile(0.99).to_string(),
            ]);
        }
        for (tag, v) in [
            ("fsync_ns/p50", fsync.quantile(0.50)),
            ("fsync_ns/p99", fsync.quantile(0.99)),
        ] {
            out.push(jsonout::JsonResult {
                bench: format!("obs/wal/{tag}"),
                ns_per_iter: v as f64,
                ..Default::default()
            });
        }
        out.push(jsonout::JsonResult {
            bench: "obs/wal/commit_batch/mean".into(),
            ns_per_iter: batch.mean(),
            ..Default::default()
        });
    }
    out
}

/// E20 — kernel layer: the multi-chain SWAR/accelerated gamma decoder
/// and the occupancy-word block-skipping intersection, measured against
/// their forced references in one process. Full-size run; returns the
/// `kernel/*` rows for `BENCH_NNNN.json`.
pub fn e20() -> Vec<jsonout::JsonResult> {
    e20_run(100_000, 2_000, 2.0)
}

/// [`e20`] with explicit sizes (the CI smoke run shrinks both and
/// loosens the speedup gate for shared-runner noise).
///
/// Emitted rows: `kernel/decode_{sparse13,wide4093,dense}` (batch decode
/// through whatever kernel dispatch picks — single/dual/quad chain, SWAR
/// or CPU-accelerated — with `per_element_ns` carrying the headline
/// number) and `kernel/intersect_{probe,blockand}_{skip,scalar}` (the
/// same workload with occupancy skipping on vs. forced off via
/// [`psi_bits::kernel::set_block_skip`]).
///
/// The run is also a correctness gate, not just a stopwatch: every
/// decode is compared against its source positions, both intersection
/// workloads assert skip-on equals forced-scalar element for element,
/// the kernel counters must show the fast paths actually ran (dispatch
/// silently falling back to scalar would otherwise read as a mysterious
/// slowdown), and the sparse-probe-vs-dense intersection must beat its
/// forced-scalar arm by `min_speedup`. The block-AND pair is tracked at
/// parity, not gated: across far-apart clusters the scalar arm's
/// directory gallop crosses each gap in one jump, so whole-block
/// skipping saves decode work (the counter proves it fired) rather than
/// wall clock.
pub fn e20_run(decode_n: usize, clusters: u64, min_speedup: f64) -> Vec<jsonout::JsonResult> {
    use psi_api::RidSet;
    use psi_bits::{kernel, GapBitmap};

    head(
        "E20",
        "kernel layer: multi-chain gamma decode and occupancy block-skip intersection vs forced references",
    );
    let mut out: Vec<jsonout::JsonResult> = Vec::new();
    let push = |rows: &mut Vec<jsonout::JsonResult>,
                bench: String,
                m: jsonout::Measured,
                elements: u64| {
        println!(
            "{bench:<40} {:>14.1} ns/iter  ({:.2} ns/element)",
            m.ns,
            m.ns / elements as f64
        );
        rows.push(jsonout::JsonResult {
            bench,
            ns_per_iter: m.ns,
            spread: m.spread,
            elements,
            ..Default::default()
        });
    };
    let decode_kernel_ops =
        || kernel::DECODE_SWAR.get() + kernel::DECODE_SIMD.get() + kernel::DECODE_SCALAR.get();

    // --- batch decode: the three regimes the chain dispatch splits on.
    // sparse13 (7-bit codes) takes the dual-chain path, wide4093 (~23-bit
    // codes) qualifies for quad chains, dense exercises the burst loop.
    let n = decode_n as u64;
    let shapes: [(&str, Vec<u64>); 3] = [
        ("sparse13", (0..n).map(|i| i * 13).collect()),
        ("wide4093", (0..n).map(|i| i * 4093).collect()),
        ("dense", (0..n).map(|i| i + i / 7).collect()),
    ];
    let mut buf = Vec::with_capacity(decode_n);
    for (name, positions) in &shapes {
        let bm = GapBitmap::from_sorted(positions, positions.last().unwrap() + 1);
        let ops_before = decode_kernel_ops();
        let m = jsonout::measure(|| {
            bm.decode_all(&mut buf);
            buf.len()
        });
        assert_eq!(
            &buf, positions,
            "kernel decode of {name} must reproduce its source positions"
        );
        assert!(
            decode_kernel_ops() > ops_before,
            "no decode kernel counted the {name} batch"
        );
        push(&mut out, format!("kernel/decode_{name}"), m, n);
    }

    // --- sparse-probe-vs-dense intersection: B is clusters of 100
    // positions at stride 4000 (well inside one occupancy window), A
    // probes once per cluster — 1 in 10 hits, the misses land in the
    // covered-but-empty gap where `rules_out` answers from the occupancy
    // word alone, skipping B's gallop and tail decode entirely.
    let b_pos: Vec<u64> = (0..clusters)
        .flat_map(|c| (0..100).map(move |j| c * 4000 + j))
        .collect();
    let a_pos: Vec<u64> = (0..clusters)
        .map(|c| c * 4000 + if c % 10 == 0 { c % 100 } else { 2000 + c % 64 })
        .collect();
    let universe = clusters * 4000 + 1;
    let a = RidSet::from_positions(GapBitmap::from_sorted(&a_pos, universe));
    let b = RidSet::from_positions(GapBitmap::from_sorted(&b_pos, universe));
    let probe =
        |rows: &mut Vec<jsonout::JsonResult>, skip: bool| -> (jsonout::Measured, Vec<u64>) {
            kernel::set_block_skip(skip);
            let arm = if skip { "skip" } else { "scalar" };
            let m = jsonout::measure(|| a.intersect(&b).cardinality());
            let got = a.intersect(&b).to_vec();
            push(rows, format!("kernel/intersect_probe_{arm}"), m, clusters);
            (m, got)
        };
    let skips_before = kernel::INTERSECT_BLOCK_SKIP.get();
    let (fast, fast_got) = probe(&mut out, true);
    assert!(
        kernel::INTERSECT_BLOCK_SKIP.get() > skips_before,
        "occupancy probe skip never fired on the probe workload"
    );
    let (scalar, scalar_got) = probe(&mut out, false);
    kernel::set_block_skip(true);
    assert_eq!(fast_got, scalar_got, "block skip changed the intersection");
    assert_eq!(fast_got.len() as u64, clusters.div_ceil(10), "probe hits");
    let speedup = scalar.ns / fast.ns;
    println!("    probe-skip speedup over forced scalar: {speedup:.2}x");
    assert!(
        speedup >= min_speedup,
        "sparse-probe-vs-dense must be ≥{min_speedup}x with block skip (got {speedup:.2}x)"
    );

    // --- disjoint-cluster intersection: A and B alternate whole
    // clusters, so every gallop lands both cursors on exactly-summarized
    // blocks whose occupancy words AND to zero and entire sample blocks
    // are seated past without decoding a code.
    let cluster = |first: u64, step: u64, count: u64, len: u64, stride: u64| -> Vec<u64> {
        (0..count)
            .flat_map(move |c| (0..len).map(move |j| (first + c * step) * stride + j))
            .collect()
    };
    let ca = cluster(0, 2, clusters.min(200), 256, 8192);
    let cb = cluster(1, 2, clusters.min(200), 256, 8192);
    let cu = 8192 * (2 * clusters.min(200) + 1);
    let da = RidSet::from_positions(GapBitmap::from_sorted(&ca, cu));
    let db = RidSet::from_positions(GapBitmap::from_sorted(&cb, cu));
    let ands_before = kernel::INTERSECT_BLOCK_AND.get();
    kernel::set_block_skip(true);
    let m_and = jsonout::measure(|| da.intersect(&db).cardinality());
    assert!(
        kernel::INTERSECT_BLOCK_AND.get() > ands_before,
        "block-AND skip never fired on the disjoint-cluster workload"
    );
    assert_eq!(da.intersect(&db).cardinality(), 0, "clusters are disjoint");
    kernel::set_block_skip(false);
    let m_and_scalar = jsonout::measure(|| da.intersect(&db).cardinality());
    assert_eq!(da.intersect(&db).cardinality(), 0, "scalar agrees: empty");
    kernel::set_block_skip(true);
    push(
        &mut out,
        "kernel/intersect_blockand_skip".into(),
        m_and,
        ca.len() as u64,
    );
    push(
        &mut out,
        "kernel/intersect_blockand_scalar".into(),
        m_and_scalar,
        ca.len() as u64,
    );
    // No speedup gate here: on far-apart clusters the scalar arm's
    // directory gallop already crosses each gap in one jump, so the
    // block-AND arm buys decode avoidance (visible in the counter), not
    // wall clock — the row pair tracks that it stays at parity.
    println!(
        "    block-AND arm vs forced scalar: {:.2}x (parity expected; the win is skipped decode work)",
        m_and_scalar.ns / m_and.ns
    );
    out
}

/// Runs every experiment in order.
pub fn all() {
    e01();
    e02();
    e03();
    e04();
    e05();
    e06();
    e07();
    e08();
    e09();
    e10();
    e11();
    e12();
    e13();
    e14();
    e15();
    e16();
    e17();
    e18();
    e19();
    e20();
}
