//! Live-stats suite (PR 9): the `STATS` wire op against a running
//! server.
//!
//! The pinned contract:
//!
//! * **exactness** — a quiesced server's wire-decoded snapshot is
//!   structurally identical (`Snapshot: PartialEq`) to the snapshot the
//!   server assembles locally, and its `serve/*` counters equal
//!   [`Server::stats`] field for field;
//! * **shed causes split** — `shed == shed_global + shed_conn`, and the
//!   per-connection totals account every shed and served response;
//! * **slow-query ring** — with a zero threshold every served request
//!   lands in the ring with its full plan trace;
//! * **quarantine visibility** — quarantined extents appear as
//!   `quarantine/<attr>` list entries in the live snapshot.

use std::sync::Arc;
use std::time::{Duration, Instant};

use psi_api::{naive_query, RidSet, SecondaryIndex, Symbol};
use psi_core::OptimalIndex;
use psi_io::{IoConfig, IoSession};
use psi_query::{IndexedColumn, IndexedTable, Predicate};
use psi_serve::wire::ErrorCode;
use psi_serve::{Client, ServeConfig, Server};

fn table() -> IndexedTable {
    let cfg = IoConfig::with_block_bits(512);
    let a: Vec<u32> = (0..4000u32).map(|i| i % 16).collect();
    let b: Vec<u32> = (0..4000u32).map(|i| (i * 7) % 8).collect();
    IndexedTable::from_columns(vec![
        IndexedColumn {
            name: "a".into(),
            sigma: 16,
            index: Box::new(OptimalIndex::build(&a, 16, cfg)),
        },
        IndexedColumn {
            name: "b".into(),
            sigma: 8,
            index: Box::new(OptimalIndex::build(&b, 8, cfg)),
        },
    ])
}

/// Polls until `cond` holds (the batcher's post-response bookkeeping
/// runs after the client already saw the response bytes).
fn quiesce(mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "server did not quiesce");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn stats_reply_matches_the_servers_own_counters_exactly() {
    let table = Arc::new(table());
    table.quarantine_extent("b", 3).expect("quarantine");
    table.quarantine_extent("b", 1).expect("quarantine");
    let server = Server::serve(Arc::clone(&table), ServeConfig::default()).expect("serve");
    let addr = server.addr().expect("tcp addr");

    let mut client = Client::connect(addr).expect("connect");
    let mut rows_total = 0u64;
    for id in 0..40u64 {
        let q = Predicate::range("a", (id % 14) as u32, (id % 14) as u32 + 2)
            .normalize()
            .expect("normalize");
        let resp = client.call(id, &q).expect("call");
        rows_total += resp.body.expect("rows").rows.len() as u64;
    }
    assert!(rows_total > 0);
    quiesce(|| {
        server.stats().served_rows == 40
            && server
                .conn_stats()
                .iter()
                .map(|(_, c)| c.served)
                .sum::<u64>()
                == 40
    });

    let over_wire = client.stats(777).expect("stats");
    let local = server.snapshot();
    // Global-registry entries (pool/*, query/*, …) are shared with the
    // sibling tests of this binary and may move between the two
    // snapshots; the server-local sections are quiesced and must agree
    // entry for entry.
    let own = |snap: &psi_obs::Snapshot| {
        snap.entries
            .iter()
            .filter(|(n, _)| n.starts_with("serve/") || n.starts_with("quarantine/"))
            .cloned()
            .collect::<Vec<_>>()
    };
    assert_eq!(
        own(&over_wire),
        own(&local),
        "wire-decoded snapshot must be structurally identical to the server's own"
    );

    // And the injected serve/* entries equal the typed counters.
    let s = server.stats();
    assert_eq!(over_wire.counter("serve/admitted"), Some(s.admitted));
    assert_eq!(over_wire.counter("serve/served_rows"), Some(s.served_rows));
    assert_eq!(
        over_wire.counter("serve/served_errors"),
        Some(s.served_errors)
    );
    assert_eq!(over_wire.counter("serve/shed"), Some(0));
    assert_eq!(over_wire.counter("serve/batches"), Some(s.batches));
    assert_eq!(over_wire.counter("serve/max_batch"), Some(s.max_batch));
    assert_eq!(over_wire.gauge("serve/queue_depth"), Some(0));
    let lat = over_wire
        .histogram("serve/request_ns")
        .expect("latency histogram");
    assert_eq!(lat.count, 40, "one latency sample per served request");
    assert_eq!(over_wire.counter("serve/conn/1/served"), Some(40));
    // The quarantine planted above is visible live, ascending.
    assert_eq!(over_wire.list("quarantine/b"), Some(&[1u64, 3][..]));
    // Lower layers flow through the same snapshot (the planner recorded
    // every query this server executed into the global registry).
    assert!(over_wire.counter("query/executed").unwrap_or(0) >= 40);
    assert!(over_wire
        .histogram("query/latency_ns")
        .is_some_and(|h| h.count >= 40));
    // Every kernel-path counter ships in the reply, and at least one
    // decode kernel actually ran while serving the 40 queries above.
    let mut decodes = 0u64;
    for (name, _) in psi_bits::kernel::snapshot() {
        let v = over_wire.counter(name);
        assert!(v.is_some(), "{name} missing from the STATS reply");
        if name.starts_with("kernel/decode_") {
            decodes += v.unwrap();
        }
    }
    assert!(decodes > 0, "no decode kernel recorded any work");
    // The rendering mentions every section an operator would look for.
    let text = over_wire.render();
    for needle in ["serve/request_ns", "quarantine/b", "query/latency_ns"] {
        assert!(text.contains(needle), "{needle} missing from:\n{text}");
    }

    drop(client);
    server.shutdown();
}

/// An index slow enough to force queue build-up.
struct SlowScan {
    data: Vec<Symbol>,
    sigma: u32,
}

impl SecondaryIndex for SlowScan {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }
    fn sigma(&self) -> Symbol {
        self.sigma
    }
    fn space_bits(&self) -> u64 {
        0
    }
    fn query(&self, lo: Symbol, hi: Symbol, _io: &IoSession) -> RidSet {
        std::thread::sleep(Duration::from_millis(2));
        naive_query(&self.data, lo, hi)
    }
}

#[test]
fn shed_causes_split_per_conn_totals_and_slow_log() {
    let data: Vec<u32> = (0..500u32).map(|i| i % 5).collect();
    let table = IndexedTable::from_columns(vec![IndexedColumn {
        name: "v".into(),
        sigma: 5,
        index: Box::new(SlowScan {
            data: data.clone(),
            sigma: 5,
        }),
    }]);
    let server = Server::serve(
        Arc::new(table),
        ServeConfig {
            batch_window: 2,
            max_inflight: 64,
            max_inflight_per_conn: 2,
            // Every served request is "slow" — the ring must see them all
            // (up to capacity) with full traces.
            slow_query_ns: 0,
            slow_log_capacity: 8,
            ..ServeConfig::default()
        },
    )
    .expect("serve");
    let addr = server.addr().expect("tcp addr");

    let q = Predicate::point("v", 3).normalize().expect("normalize");
    let mut client = Client::connect(addr).expect("connect");
    const BURST: u64 = 30;
    for id in 0..BURST {
        client.send(id, &q).expect("send");
    }
    let mut ok = 0u64;
    let mut shed = 0u64;
    for _ in 0..BURST {
        let resp = client.recv().expect("recv").expect("open");
        match resp.body {
            Ok(_) => ok += 1,
            Err(e) => {
                assert_eq!(e.code, ErrorCode::Overloaded);
                shed += 1;
            }
        }
    }
    assert!(
        shed > 0,
        "burst never overflowed the 2-slot per-conn budget"
    );
    // Per-conn totals are the last thing the batcher writes per tick, so
    // they quiescing implies the slow-log pushes are in too.
    quiesce(|| {
        server.stats().served_rows == ok
            && server
                .conn_stats()
                .iter()
                .map(|(_, c)| c.served)
                .sum::<u64>()
                == ok
    });

    let s = server.stats();
    assert_eq!(s.shed, shed);
    assert_eq!(
        s.shed_global + s.shed_conn,
        s.shed,
        "every shed has exactly one cause"
    );
    assert_eq!(
        s.shed_conn, shed,
        "a single client over its own cap is a per-conn shed"
    );
    let conns = server.conn_stats();
    assert_eq!(conns.len(), 1);
    assert_eq!(conns[0].1.shed, shed);
    assert_eq!(conns[0].1.served, ok);

    let slow = server.slow_queries();
    assert_eq!(slow.len() as u64, ok.min(8), "ring keeps the newest 8");
    for sq in &slow {
        assert!(sq.elapsed_ns > 0);
        let trace = sq.trace.as_ref().expect("served slow query has a trace");
        assert_eq!(trace.conditions.len(), 1);
        assert_eq!(trace.conditions[0].attr, "v");
        assert!(sq.error.is_none());
    }
    // The wire snapshot agrees on the split and the ring accounting.
    let snap = client.stats(1).expect("stats");
    assert_eq!(snap.counter("serve/shed_conn"), Some(shed));
    assert_eq!(snap.counter("serve/shed_global"), Some(s.shed_global));
    assert_eq!(snap.counter("serve/slow_queries"), Some(ok.min(8)));
    assert_eq!(
        snap.counter("serve/slow_queries_evicted"),
        Some(ok.saturating_sub(8))
    );
    assert_eq!(snap.counter("serve/conn/1/shed"), Some(shed));

    drop(client);
    server.shutdown();
}
