//! Server soak suite (PR 8 satellite): open-loop clients against a live
//! server with injected transient read faults and overload bursts.
//!
//! The pinned contract:
//!
//! * **exactly one response per request** — rows, a typed error, or
//!   `Overloaded`; never zero, never two;
//! * **non-shed row responses are bit-identical** to a direct
//!   `execute_conjunctive` of the same query on an identical fault-free
//!   table;
//! * **typed errors only of the injected kinds** — `ReadTransient` from
//!   the `FaultyStore` schedule, `Overloaded` from admission control,
//!   `Protocol` only for deliberately malformed frames;
//! * **clean shutdown** — `Server::shutdown` joins every thread and the
//!   final counters balance against what the clients saw.

use std::collections::HashMap;
use std::sync::Arc;

use psi_api::{naive_query, RidSet, SecondaryIndex, Symbol};
use psi_core::OptimalIndex;
use psi_io::{
    BufferPool, Disk, ExtentId, Fault, FaultyStore, IoConfig, IoSession, MemStore, StoredExtent,
};
use psi_query::{ConjunctiveQuery, IndexedColumn, IndexedTable, Predicate};
use psi_serve::wire::{ErrorCode, Response};
use psi_serve::{Client, ServeConfig, Server};
use psi_store::PersistIndex;
use rand::prelude::*;
use rand::rngs::StdRng;

const BLOCK_BITS: u64 = 512;
const N: usize = 6000;

fn column_data(seed: u64, sigma: u32) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..N).map(|_| rng.gen_range(0..sigma)).collect()
}

/// Re-hosts a built index over a pool whose backing store injects
/// transient faults at the given global fetch ordinals.
fn rehost_faulty(built: &OptimalIndex, fault_ordinals: &[u64]) -> OptimalIndex {
    let mut meta = psi_store::MetaBuf::new();
    built.write_meta(&mut meta);
    let disks = PersistIndex::disks(built);
    let d = disks[0];
    let stored: Vec<StoredExtent> = (0..d.num_extents())
        .map(|i| StoredExtent {
            bit_len: d.extent_bits(ExtentId(i as u32)),
            freed: d.is_freed(ExtentId(i as u32)),
        })
        .collect();
    let mem = MemStore::from_disk(d);
    let faulty = FaultyStore::new(mem, fault_ordinals.iter().map(|&o| (o, Fault::Transient)));
    let pool = Arc::new(BufferPool::new(Arc::new(faulty), 2048, d.block_bits()));
    let disk = Disk::from_stored(*d.config(), &stored, pool);
    let mut cursor = psi_store::MetaCursor::new(meta.bytes());
    OptimalIndex::from_parts(&mut cursor, vec![disk]).expect("re-host")
}

/// (served table with transient faults on "a", identical fault-free
/// oracle table).
fn tables(fault_ordinals: &[u64]) -> (IndexedTable, IndexedTable) {
    let a = column_data(11, 16);
    let b = column_data(12, 8);
    let cfg = IoConfig::with_block_bits(BLOCK_BITS);
    let built_a = OptimalIndex::build(&a, 16, cfg);
    let mk = |index_a: OptimalIndex| {
        IndexedTable::from_columns(vec![
            IndexedColumn {
                name: "a".into(),
                sigma: 16,
                index: Box::new(index_a),
            },
            IndexedColumn {
                name: "b".into(),
                sigma: 8,
                index: Box::new(OptimalIndex::build(&b, 8, cfg)),
            },
        ])
    };
    let served = mk(rehost_faulty(&built_a, fault_ordinals));
    let oracle = mk(OptimalIndex::build(&a, 16, cfg));
    (served, oracle)
}

fn random_query(rng: &mut StdRng) -> ConjunctiveQuery {
    let (attr, sigma) = if rng.gen_bool(0.5) {
        ("a", 16u32)
    } else {
        ("b", 8u32)
    };
    let lo = rng.gen_range(0..sigma);
    let hi = (lo + rng.gen_range(0..4u32)).min(sigma - 1);
    let pred = if rng.gen_bool(0.3) {
        Predicate::and([
            Predicate::range(attr, lo, hi),
            Predicate::point(if attr == "a" { "b" } else { "a" }, rng.gen_range(0..4)),
        ])
    } else {
        Predicate::range(attr, lo, hi)
    };
    pred.normalize().expect("normalize")
}

/// Drives `count` pipelined requests through `client` and returns the
/// responses by id, asserting exactly one response per request.
fn drive(
    client: &mut Client,
    queries: &[(u64, ConjunctiveQuery)],
    window: usize,
) -> HashMap<u64, Response> {
    let mut got: HashMap<u64, Response> = HashMap::new();
    let mut sent = 0;
    while got.len() < queries.len() {
        while sent < queries.len() && sent - got.len() < window {
            let (id, q) = &queries[sent];
            client.send(*id, q).expect("send");
            sent += 1;
        }
        let resp = client
            .recv()
            .expect("recv")
            .expect("server closed with responses outstanding");
        let prev = got.insert(resp.id, resp);
        assert!(prev.is_none(), "duplicate response for one request");
    }
    got
}

#[test]
fn soak_transient_faults_every_request_answered_exactly_once() {
    // Transient faults sprinkled over the first ~3000 pooled fetches.
    let ordinals: Vec<u64> = (0..3000u64).filter(|o| o % 41 == 5).collect();
    let (served, oracle) = tables(&ordinals);
    let server = Server::serve(
        Arc::new(served),
        ServeConfig {
            batch_window: 8,
            ..ServeConfig::default()
        },
    )
    .expect("serve");
    let addr = server.addr().expect("tcp addr");

    let mut rng = StdRng::seed_from_u64(99);
    let queries: Vec<(u64, ConjunctiveQuery)> =
        (0..400u64).map(|id| (id, random_query(&mut rng))).collect();
    let mut client = Client::connect(addr).expect("connect");
    let got = drive(&mut client, &queries, 16);
    drop(client);

    let mut rows_ok = 0usize;
    let mut transient = 0usize;
    for (id, q) in &queries {
        let resp = &got[id];
        match &resp.body {
            Ok(reply) => {
                let want = oracle.execute_conjunctive(q).expect("oracle");
                assert_eq!(
                    reply.rows,
                    want.rows.to_vec(),
                    "request {id}: rows must be bit-identical to direct execution"
                );
                rows_ok += 1;
            }
            Err(e) => {
                assert_eq!(
                    e.code,
                    ErrorCode::ReadTransient,
                    "request {id}: only injected transient faults may fail, got {e}"
                );
                transient += 1;
            }
        }
    }
    assert!(rows_ok > 0, "no request succeeded");
    assert!(
        transient > 0,
        "fault schedule never fired — weaken the soak"
    );

    let stats = server.shutdown();
    assert_eq!(stats.admitted, queries.len() as u64);
    assert_eq!(stats.served_rows, rows_ok as u64);
    assert_eq!(stats.served_errors, transient as u64);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.protocol_errors, 0);
}

/// An index whose queries take a while — forces queue build-up so
/// admission control actually sheds under a burst.
struct SlowScan {
    data: Vec<Symbol>,
    sigma: u32,
}

impl SecondaryIndex for SlowScan {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }
    fn sigma(&self) -> Symbol {
        self.sigma
    }
    fn space_bits(&self) -> u64 {
        0
    }
    fn query(&self, lo: Symbol, hi: Symbol, _io: &IoSession) -> RidSet {
        std::thread::sleep(std::time::Duration::from_millis(3));
        naive_query(&self.data, lo, hi)
    }
}

#[test]
fn soak_overload_burst_sheds_typed_and_stays_fair() {
    let data: Vec<u32> = (0..1000u32).map(|i| i % 5).collect();
    let table = IndexedTable::from_columns(vec![IndexedColumn {
        name: "v".into(),
        sigma: 5,
        index: Box::new(SlowScan {
            data: data.clone(),
            sigma: 5,
        }),
    }]);
    let server = Server::serve(
        Arc::new(table),
        ServeConfig {
            batch_window: 2,
            max_inflight: 4,
            max_inflight_per_conn: 2,
            ..ServeConfig::default()
        },
    )
    .expect("serve");
    let addr = server.addr().expect("tcp addr");
    let q = Predicate::point("v", 3).normalize().expect("normalize");
    let want = naive_query(&data, 3, 3).to_vec();

    // Hot client: floods 60 pipelined requests, far over its 2-slot
    // budget. Polite client: sequential one-at-a-time calls on another
    // connection, concurrently.
    let polite = std::thread::spawn({
        let q = q.clone();
        let want = want.clone();
        move || {
            let mut c = Client::connect(addr).expect("connect polite");
            for id in 0..12u64 {
                let resp = c.call(id, &q).expect("call");
                assert_eq!(resp.id, id);
                let reply = resp.body.unwrap_or_else(|e| {
                    panic!("a sequential client must never be shed by a hot peer: {e}")
                });
                assert_eq!(reply.rows, want);
            }
        }
    });

    let mut hot = Client::connect(addr).expect("connect hot");
    const BURST: u64 = 60;
    for id in 0..BURST {
        hot.send(id, &q).expect("send");
    }
    let mut answered: HashMap<u64, Response> = HashMap::new();
    while answered.len() < BURST as usize {
        let resp = hot.recv().expect("recv").expect("server closed mid-burst");
        assert!(
            answered.insert(resp.id, resp).is_none(),
            "duplicate response"
        );
    }
    let mut ok = 0usize;
    let mut shed = 0usize;
    for (id, resp) in &answered {
        match &resp.body {
            Ok(reply) => {
                assert_eq!(&reply.rows, &want, "request {id}");
                ok += 1;
            }
            Err(e) => {
                assert_eq!(e.code, ErrorCode::Overloaded, "request {id}: {e}");
                shed += 1;
            }
        }
    }
    assert_eq!(ok + shed, BURST as usize);
    assert!(shed > 0, "burst never overflowed the 2-slot budget");
    assert!(ok > 0, "admission must not shed everything");
    polite.join().expect("polite client");
    drop(hot);

    let stats = server.shutdown();
    assert_eq!(stats.shed, shed as u64);
    assert_eq!(stats.admitted, ok as u64 + 12);
    assert_eq!(stats.served_rows, ok as u64 + 12);
    assert_eq!(stats.served_errors, 0);
}

#[test]
fn soak_unix_socket_transport() {
    let (served, oracle) = tables(&[]);
    let dir = std::env::temp_dir().join(format!("psi_serve_soak_{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("sock");
    let server =
        Server::serve_unix(Arc::new(served), ServeConfig::default(), &path).expect("serve unix");

    let mut rng = StdRng::seed_from_u64(7);
    let queries: Vec<(u64, ConjunctiveQuery)> =
        (0..60u64).map(|id| (id, random_query(&mut rng))).collect();
    let mut client = Client::connect_unix(&path).expect("connect unix");
    let got = drive(&mut client, &queries, 8);
    for (id, q) in &queries {
        let reply = got[id].body.as_ref().expect("fault-free serving");
        let want = oracle.execute_conjunctive(q).expect("oracle");
        assert_eq!(reply.rows, want.rows.to_vec(), "request {id}");
    }
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.admitted, queries.len() as u64);
    assert!(!path.exists(), "socket file swept on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn soak_malformed_frames_get_typed_errors_not_panics() {
    let (served, _) = tables(&[]);
    let server = Server::serve(Arc::new(served), ServeConfig::default()).expect("serve");
    let addr = server.addr().expect("tcp addr");

    // A frame whose body is truncated mid-condition: the id survives, the
    // connection stays usable.
    {
        use std::io::Write;
        let q = Predicate::point("a", 1).normalize().expect("normalize");
        let mut full = psi_serve::wire::encode_request(5, &q);
        full.truncate(full.len() - 3);
        let mut raw = std::net::TcpStream::connect(addr).expect("connect");
        raw.write_all(&(full.len() as u32).to_le_bytes())
            .expect("len");
        raw.write_all(&full).expect("body");
        let mut reader = raw.try_clone().expect("clone");
        let resp = read_one(&mut reader);
        assert_eq!(resp.id, 5);
        assert_eq!(resp.body.unwrap_err().code, ErrorCode::Protocol);
        // Same connection, now a valid request: still served.
        let frame = psi_serve::wire::encode_request(6, &q);
        raw.write_all(&(frame.len() as u32).to_le_bytes())
            .expect("len");
        raw.write_all(&frame).expect("body");
        let resp = read_one(&mut reader);
        assert_eq!(resp.id, 6);
        assert!(resp.body.is_ok());
    }

    // A frame that cannot even yield an id: answered with UNKNOWN_ID and
    // the connection closed — but the server survives for new clients.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).expect("connect");
        raw.write_all(&2u32.to_le_bytes()).expect("len");
        raw.write_all(&[0xFF, 0xFF]).expect("garbage");
        let mut reader = raw.try_clone().expect("clone");
        let resp = read_one(&mut reader);
        assert_eq!(resp.id, psi_serve::wire::UNKNOWN_ID);
        assert_eq!(resp.body.unwrap_err().code, ErrorCode::Protocol);
    }
    let q = Predicate::point("b", 2).normalize().expect("normalize");
    let mut fresh = Client::connect(addr).expect("connect after garbage");
    let resp = fresh.call(1, &q).expect("call");
    assert!(resp.body.is_ok(), "server must outlive malformed peers");
    drop(fresh);
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 2);
}

fn read_one(r: &mut std::net::TcpStream) -> Response {
    use psi_serve::wire::{decode_response, read_frame_blocking, FrameIn, MAX_FRAME_BYTES};
    match read_frame_blocking(r, MAX_FRAME_BYTES).expect("frame") {
        FrameIn::Payload(p) => decode_response(&p).expect("decode"),
        other => panic!("expected payload, got {other:?}"),
    }
}
