//! A minimal pipelined client for the psi-serve wire protocol.
//!
//! [`Client::send`] and [`Client::recv`] are independent, so a caller
//! can keep many requests in flight (open-loop load generation needs
//! this). Responses arrive in *server* order, not send order — match
//! them by id. [`Client::call`] is the simple one-in-one-out helper.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

use psi_query::ConjunctiveQuery;

use crate::wire::{
    decode_response, decode_stats_reply, encode_request, encode_stats_request, read_frame_blocking,
    write_frame, FrameIn, Response, MAX_FRAME_BYTES,
};

enum Half {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Half {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Half::Tcp(s) => s.read(buf),
            Half::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Half {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Half::Tcp(s) => s.write(buf),
            Half::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Half::Tcp(s) => s.flush(),
            Half::Unix(s) => s.flush(),
        }
    }
}

/// The sending half of a split client (see [`Client::split`]).
pub struct Sender {
    w: BufWriter<Half>,
}

impl Sender {
    /// Encodes and sends one request frame.
    pub fn send(&mut self, id: u64, query: &ConjunctiveQuery) -> io::Result<()> {
        write_frame(&mut self.w, &encode_request(id, query))
    }
}

/// The receiving half of a split client.
pub struct Receiver {
    r: BufReader<Half>,
}

impl Receiver {
    /// Blocks for the next response; `None` once the server closed the
    /// stream cleanly.
    pub fn recv(&mut self) -> io::Result<Option<Response>> {
        match read_frame_blocking(&mut self.r, MAX_FRAME_BYTES)? {
            FrameIn::Closed => Ok(None),
            FrameIn::TooLarge(len) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server response frame of {len} bytes"),
            )),
            FrameIn::Payload(p) => decode_response(&p)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
    }
}

/// A connected psi-serve client.
pub struct Client {
    sender: Sender,
    receiver: Receiver,
}

impl Client {
    /// Connects over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let r = stream.try_clone()?;
        Ok(Self::from_halves(Half::Tcp(stream), Half::Tcp(r)))
    }

    /// Connects over a unix-domain socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let r = stream.try_clone()?;
        Ok(Self::from_halves(Half::Unix(stream), Half::Unix(r)))
    }

    fn from_halves(w: Half, r: Half) -> Client {
        Client {
            sender: Sender {
                w: BufWriter::new(w),
            },
            receiver: Receiver {
                r: BufReader::new(r),
            },
        }
    }

    /// Sends one request without waiting (pipelining).
    pub fn send(&mut self, id: u64, query: &ConjunctiveQuery) -> io::Result<()> {
        self.sender.send(id, query)
    }

    /// Blocks for the next response (any in-flight id).
    pub fn recv(&mut self) -> io::Result<Option<Response>> {
        self.receiver.recv()
    }

    /// One-in-one-out convenience: send, then read the next response.
    pub fn call(&mut self, id: u64, query: &ConjunctiveQuery) -> io::Result<Response> {
        self.send(id, query)?;
        self.recv()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Fetches the server's live metrics snapshot (the `STATS` op) and
    /// returns it decoded; render it with [`psi_obs::Snapshot::render`].
    ///
    /// The reply is read as the *next* frame on this connection, so
    /// call this only with no queries in flight here — the server
    /// answers `STATS` inline from the reader thread while batched
    /// query responses land in server order, and an interleaved rows
    /// frame would be misread as a protocol error.
    pub fn stats(&mut self, id: u64) -> io::Result<psi_obs::Snapshot> {
        write_frame(&mut self.sender.w, &encode_stats_request(id))?;
        match read_frame_blocking(&mut self.receiver.r, MAX_FRAME_BYTES)? {
            FrameIn::Closed => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed",
            )),
            FrameIn::TooLarge(len) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server stats frame of {len} bytes"),
            )),
            FrameIn::Payload(p) => {
                let (got, snap) = decode_stats_reply(&p)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                if got != id {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("stats reply for id {got}, expected {id}"),
                    ));
                }
                Ok(snap)
            }
        }
    }

    /// Splits into independently owned sender/receiver halves, so one
    /// thread can drive arrivals while another collects completions.
    pub fn split(self) -> (Sender, Receiver) {
        (self.sender, self.receiver)
    }
}
