//! The psi-serve wire format: length-prefixed binary frames whose
//! payloads are encoded with the store's bounds-checked [`MetaBuf`] /
//! [`MetaCursor`] primitives.
//!
//! ```text
//! frame     := len:u32le | payload (len bytes, len ≤ max_frame_bytes)
//! request   := 0x01 | id:u64 | n:u64 | n × condition
//! condition := attr:str | lo:u32 | hi:u32 | negated:bool
//! rows      := 0x02 | id:u64 | rids:vec<u64> | blocks_read:u64 | degraded:bool
//! error     := 0x03 | id:u64 | code:u8 | message:str
//! stats     := 0x04 | id:u64
//! statsrep  := 0x05 | id:u64 | n:u64 | n × entry
//! entry     := name:str | kind:u8 | value        (kind 1 counter:u64,
//!              2 gauge:i64, 3 histogram: count:u64 sum:u64 vec<(hi,n)>,
//!              4 list: vec<u64>)
//! str       := len:u64 | bytes   (length-prefixed UTF-8, like MetaBuf)
//! ```
//!
//! Every decoder path returns a typed error — a malformed frame can
//! never panic the server, and a frame longer than the negotiated cap is
//! rejected *before* any allocation. Requests and responses carry a
//! caller-chosen `id`; responses may come back in any order (the server
//! batches per tick), so the id is the only correlation.

use std::io::{self, Read, Write};

use psi_obs::{HistSnapshot, Snapshot, Value};
use psi_query::{AttrCondition, ConjunctiveQuery, QueryError, QueryOutcome};
use psi_store::{MetaBuf, MetaCursor};

/// Default cap on a single frame's payload, requests and responses alike
/// (a response listing every row of a large result can be sizeable).
pub const MAX_FRAME_BYTES: u32 = 8 << 20;

/// Message tag: a conjunctive query request.
pub const MSG_QUERY: u8 = 0x01;
/// Message tag: a successful response carrying result rows.
pub const MSG_ROWS: u8 = 0x02;
/// Message tag: a typed failure response.
pub const MSG_ERROR: u8 = 0x03;
/// Message tag: a live metrics-snapshot request. Answered inline by the
/// connection's reader thread — it bypasses admission control and
/// batching, so a saturated server still answers its operator.
pub const MSG_STATS: u8 = 0x04;
/// Message tag: the metrics-snapshot response.
pub const MSG_STATS_REPLY: u8 = 0x05;

/// Request id used for an error response when the offending frame was
/// too malformed to yield the real id.
pub const UNKNOWN_ID: u64 = u64::MAX;

/// Typed failure codes carried by [`MSG_ERROR`] responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request frame did not decode (bad tag, truncated payload,
    /// non-UTF-8 attribute, trailing garbage).
    Protocol = 1,
    /// Admission control shed the request: the server's in-flight budget
    /// (global or per-connection) was full. Retry after backoff.
    Overloaded = 2,
    /// The query names an attribute the served table does not have.
    UnknownAttribute = 3,
    /// A block read failed with a transient fault (pool frame budget
    /// exhausted, injected flake). Retryable.
    ReadTransient = 4,
    /// A block read failed permanently.
    ReadPermanent = 5,
    /// A block read came back corrupt and no fallback could answer.
    ReadCorrupt = 6,
    /// The attribute is quarantined with no scan fallback.
    Quarantined = 7,
    /// Query execution panicked server-side (contained to this request).
    Panicked = 8,
    /// The predicate was not a conjunction of per-attribute conditions.
    NotConjunctive = 9,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Overloaded,
            3 => ErrorCode::UnknownAttribute,
            4 => ErrorCode::ReadTransient,
            5 => ErrorCode::ReadPermanent,
            6 => ErrorCode::ReadCorrupt,
            7 => ErrorCode::Quarantined,
            8 => ErrorCode::Panicked,
            9 => ErrorCode::NotConjunctive,
            _ => return None,
        })
    }
}

/// A typed failure response as seen on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Failure taxonomy — drives the client's remedy.
    pub code: ErrorCode,
    /// Human-readable cause from the failing layer.
    pub message: String,
}

impl WireError {
    /// A protocol (malformed frame) error.
    pub fn protocol(message: impl Into<String>) -> WireError {
        WireError {
            code: ErrorCode::Protocol,
            message: message.into(),
        }
    }

    /// The admission-control shed response.
    pub fn overloaded() -> WireError {
        WireError {
            code: ErrorCode::Overloaded,
            message: "server overloaded: in-flight budget full".into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

impl From<&QueryError> for WireError {
    fn from(e: &QueryError) -> WireError {
        let code = match e {
            QueryError::NotConjunctive => ErrorCode::NotConjunctive,
            QueryError::UnknownAttribute(_) => ErrorCode::UnknownAttribute,
            QueryError::Read(r) => match r.class {
                psi_io::ErrorClass::Transient => ErrorCode::ReadTransient,
                psi_io::ErrorClass::Permanent => ErrorCode::ReadPermanent,
                psi_io::ErrorClass::Corrupt => ErrorCode::ReadCorrupt,
            },
            QueryError::Quarantined(_) => ErrorCode::Quarantined,
            QueryError::Panicked(_) => ErrorCode::Panicked,
        };
        WireError {
            code,
            message: e.to_string(),
        }
    }
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request id (or [`UNKNOWN_ID`]).
    pub id: u64,
    /// Rows or a typed failure.
    pub body: Result<RowsReply, WireError>,
}

/// The payload of a successful response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowsReply {
    /// Matching row ids, ascending.
    pub rows: Vec<u64>,
    /// Simulated blocks charged server-side (the paper's I/O measure).
    pub blocks_read: u64,
    /// Whether any attribute was answered by a degraded (scan) path.
    pub degraded: bool,
}

// ---------------------------------------------------------------- frames

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    // One write for prefix + payload: the server writes frames straight
    // to a nodelay socket, where a bare 4-byte length prefix would leave
    // as its own TCP segment — two packets per response.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Outcome of [`read_frame`].
#[derive(Debug)]
pub enum FrameIn {
    /// A complete payload.
    Payload(Vec<u8>),
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// The frame declared a payload larger than `max_frame_bytes`; the
    /// stream cannot be resynchronized and must be closed after the
    /// typed error response.
    TooLarge(u32),
}

/// Reads one frame. `fill` must behave like `read_exact` but may return
/// `Ok(false)` for clean EOF *before the first byte* (mid-frame EOF is an
/// error). The indirection lets the server thread poll a shutdown flag
/// between reads; plain blocking callers use [`read_frame_blocking`].
pub fn read_frame(
    mut fill: impl FnMut(&mut [u8], bool) -> io::Result<bool>,
    max_frame_bytes: u32,
) -> io::Result<FrameIn> {
    let mut len4 = [0u8; 4];
    if !fill(&mut len4, true)? {
        return Ok(FrameIn::Closed);
    }
    let len = u32::from_le_bytes(len4);
    if len > max_frame_bytes {
        return Ok(FrameIn::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    fill(&mut payload, false)?;
    Ok(FrameIn::Payload(payload))
}

/// [`read_frame`] over a plain blocking reader (the client side).
pub fn read_frame_blocking(r: &mut impl Read, max_frame_bytes: u32) -> io::Result<FrameIn> {
    read_frame(
        |buf, eof_ok| match r.read_exact(buf) {
            Ok(()) => Ok(true),
            Err(e) if eof_ok && e.kind() == io::ErrorKind::UnexpectedEof => Ok(false),
            Err(e) => Err(e),
        },
        max_frame_bytes,
    )
}

// -------------------------------------------------------------- requests

/// Encodes a query request payload.
pub fn encode_request(id: u64, query: &ConjunctiveQuery) -> Vec<u8> {
    let mut b = MetaBuf::new();
    b.put_u8(MSG_QUERY);
    b.put_u64(id);
    b.put_len(query.conditions.len());
    for c in &query.conditions {
        b.put_str(&c.attr);
        b.put_u32(c.lo);
        b.put_u32(c.hi);
        b.put_bool(c.negated);
    }
    b.bytes().to_vec()
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen correlation id.
    pub id: u64,
    /// The conditions to execute (already in conjunctive normal form —
    /// the server re-normalizes nothing).
    pub query: ConjunctiveQuery,
}

/// Decodes a request payload. On failure the error carries the request
/// id if the header got far enough to yield one ([`UNKNOWN_ID`] else),
/// so the server can still answer the offending request specifically.
pub fn decode_request(payload: &[u8]) -> Result<Request, (u64, WireError)> {
    let mut c = MetaCursor::new(payload);
    let proto = |what: &str, e: psi_store::StoreError| WireError::protocol(format!("{what}: {e}"));
    let tag = c
        .get_u8()
        .map_err(|e| (UNKNOWN_ID, proto("request tag", e)))?;
    if tag != MSG_QUERY {
        return Err((
            UNKNOWN_ID,
            WireError::protocol(format!("unexpected message tag {tag:#04x}")),
        ));
    }
    let id = c
        .get_u64()
        .map_err(|e| (UNKNOWN_ID, proto("request id", e)))?;
    let fail = |w: WireError| (id, w);
    let n = c
        .get_len(13) // minimum encoded condition: 8 (attr len) + 4 + 1
        .map_err(|e| fail(proto("condition count", e)))?;
    let mut conditions = Vec::with_capacity(n);
    for i in 0..n {
        let what = format!("condition {i}");
        let attr = c.get_str().map_err(|e| fail(proto(&what, e)))?;
        let lo = c.get_u32().map_err(|e| fail(proto(&what, e)))?;
        let hi = c.get_u32().map_err(|e| fail(proto(&what, e)))?;
        let negated = c.get_bool().map_err(|e| fail(proto(&what, e)))?;
        conditions.push(AttrCondition {
            attr,
            lo,
            hi,
            negated,
        });
    }
    if c.remaining() != 0 {
        return Err((
            id,
            WireError::protocol(format!("{} trailing bytes after request", c.remaining())),
        ));
    }
    Ok(Request {
        id,
        query: ConjunctiveQuery { conditions },
    })
}

// ------------------------------------------------------------- responses

/// Encodes a rows response from an executed outcome.
pub fn encode_rows(id: u64, outcome: &QueryOutcome) -> Vec<u8> {
    let mut b = MetaBuf::new();
    b.put_u8(MSG_ROWS);
    b.put_u64(id);
    b.put_vec_u64(&outcome.rows.to_vec());
    b.put_u64(outcome.io.reads);
    b.put_bool(!outcome.degraded.is_empty());
    b.bytes().to_vec()
}

/// Encodes a typed error response.
pub fn encode_error(id: u64, err: &WireError) -> Vec<u8> {
    let mut b = MetaBuf::new();
    b.put_u8(MSG_ERROR);
    b.put_u64(id);
    b.put_u8(err.code as u8);
    b.put_str(&err.message);
    b.bytes().to_vec()
}

/// Decodes a response payload (the client side). Malformed responses are
/// a protocol error — the server never produces them, so the stream is
/// unusable.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut c = MetaCursor::new(payload);
    let proto = |what: &str, e: psi_store::StoreError| WireError::protocol(format!("{what}: {e}"));
    let tag = c.get_u8().map_err(|e| proto("response tag", e))?;
    let id = c.get_u64().map_err(|e| proto("response id", e))?;
    let body = match tag {
        MSG_ROWS => {
            let rows = c.get_vec_u64().map_err(|e| proto("rows", e))?;
            let blocks_read = c.get_u64().map_err(|e| proto("blocks_read", e))?;
            let degraded = c.get_bool().map_err(|e| proto("degraded flag", e))?;
            Ok(RowsReply {
                rows,
                blocks_read,
                degraded,
            })
        }
        MSG_ERROR => {
            let code = c.get_u8().map_err(|e| proto("error code", e))?;
            let code = ErrorCode::from_u8(code)
                .ok_or_else(|| WireError::protocol(format!("unknown error code {code}")))?;
            let message = c.get_str().map_err(|e| proto("error message", e))?;
            Err(WireError { code, message })
        }
        other => {
            return Err(WireError::protocol(format!(
                "unexpected response tag {other:#04x}"
            )))
        }
    };
    if c.remaining() != 0 {
        return Err(WireError::protocol(format!(
            "{} trailing bytes after response",
            c.remaining()
        )));
    }
    Ok(Response { id, body })
}

// ----------------------------------------------------------------- stats

/// Encodes a metrics-snapshot request.
pub fn encode_stats_request(id: u64) -> Vec<u8> {
    let mut b = MetaBuf::new();
    b.put_u8(MSG_STATS);
    b.put_u64(id);
    b.bytes().to_vec()
}

/// Decodes a metrics-snapshot request, returning its id.
pub fn decode_stats_request(payload: &[u8]) -> Result<u64, (u64, WireError)> {
    let mut c = MetaCursor::new(payload);
    let proto = |what: &str, e: psi_store::StoreError| WireError::protocol(format!("{what}: {e}"));
    let tag = c
        .get_u8()
        .map_err(|e| (UNKNOWN_ID, proto("stats tag", e)))?;
    if tag != MSG_STATS {
        return Err((
            UNKNOWN_ID,
            WireError::protocol(format!("unexpected message tag {tag:#04x}")),
        ));
    }
    let id = c
        .get_u64()
        .map_err(|e| (UNKNOWN_ID, proto("stats id", e)))?;
    if c.remaining() != 0 {
        return Err((
            id,
            WireError::protocol(format!(
                "{} trailing bytes after stats request",
                c.remaining()
            )),
        ));
    }
    Ok(id)
}

/// Value-kind tags inside a stats reply.
const VAL_COUNTER: u8 = 1;
const VAL_GAUGE: u8 = 2;
const VAL_HISTOGRAM: u8 = 3;
const VAL_LIST: u8 = 4;

/// Encodes a metrics-snapshot reply.
pub fn encode_stats_reply(id: u64, snap: &Snapshot) -> Vec<u8> {
    let mut b = MetaBuf::new();
    b.put_u8(MSG_STATS_REPLY);
    b.put_u64(id);
    b.put_len(snap.entries.len());
    for (name, value) in &snap.entries {
        b.put_str(name);
        match value {
            Value::Counter(v) => {
                b.put_u8(VAL_COUNTER);
                b.put_u64(*v);
            }
            Value::Gauge(v) => {
                b.put_u8(VAL_GAUGE);
                b.put_u64(*v as u64);
            }
            Value::Histogram(h) => {
                b.put_u8(VAL_HISTOGRAM);
                b.put_u64(h.count);
                b.put_u64(h.sum);
                b.put_len(h.buckets.len());
                for &(hi, n) in &h.buckets {
                    b.put_u64(hi);
                    b.put_u64(n);
                }
            }
            Value::List(xs) => {
                b.put_u8(VAL_LIST);
                b.put_vec_u64(xs);
            }
        }
    }
    b.bytes().to_vec()
}

/// Decodes a metrics-snapshot reply into `(id, snapshot)`. The decoded
/// snapshot compares structurally equal ([`Snapshot`] is `PartialEq`) to
/// the one the server encoded — the wire round-trip test's contract.
pub fn decode_stats_reply(payload: &[u8]) -> Result<(u64, Snapshot), WireError> {
    let mut c = MetaCursor::new(payload);
    let proto = |what: &str, e: psi_store::StoreError| WireError::protocol(format!("{what}: {e}"));
    let tag = c.get_u8().map_err(|e| proto("stats reply tag", e))?;
    if tag != MSG_STATS_REPLY {
        return Err(WireError::protocol(format!(
            "unexpected response tag {tag:#04x}"
        )));
    }
    let id = c.get_u64().map_err(|e| proto("stats reply id", e))?;
    // Minimum encoded entry: 8 (name len) + 1 (kind) + 8 (payload word).
    let n = c.get_len(17).map_err(|e| proto("entry count", e))?;
    let mut snap = Snapshot::default();
    for i in 0..n {
        let what = format!("entry {i}");
        let name = c.get_str().map_err(|e| proto(&what, e))?;
        let kind = c.get_u8().map_err(|e| proto(&what, e))?;
        let value = match kind {
            VAL_COUNTER => Value::Counter(c.get_u64().map_err(|e| proto(&what, e))?),
            VAL_GAUGE => Value::Gauge(c.get_u64().map_err(|e| proto(&what, e))? as i64),
            VAL_HISTOGRAM => {
                let count = c.get_u64().map_err(|e| proto(&what, e))?;
                let sum = c.get_u64().map_err(|e| proto(&what, e))?;
                let m = c.get_len(16).map_err(|e| proto(&what, e))?;
                let mut buckets = Vec::with_capacity(m);
                for _ in 0..m {
                    let hi = c.get_u64().map_err(|e| proto(&what, e))?;
                    let cnt = c.get_u64().map_err(|e| proto(&what, e))?;
                    buckets.push((hi, cnt));
                }
                Value::Histogram(HistSnapshot {
                    count,
                    sum,
                    buckets,
                })
            }
            VAL_LIST => Value::List(c.get_vec_u64().map_err(|e| proto(&what, e))?),
            other => {
                return Err(WireError::protocol(format!(
                    "unknown stats value kind {other} in {what}"
                )))
            }
        };
        snap.set(&name, value);
    }
    if c.remaining() != 0 {
        return Err(WireError::protocol(format!(
            "{} trailing bytes after stats reply",
            c.remaining()
        )));
    }
    Ok((id, snap))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> ConjunctiveQuery {
        ConjunctiveQuery {
            conditions: vec![
                AttrCondition {
                    attr: "age".into(),
                    lo: 30,
                    hi: 35,
                    negated: false,
                },
                AttrCondition {
                    attr: "sex".into(),
                    lo: 1,
                    hi: 1,
                    negated: true,
                },
            ],
        }
    }

    #[test]
    fn request_roundtrip() {
        let q = query();
        let req = decode_request(&encode_request(77, &q)).expect("roundtrip");
        assert_eq!(req.id, 77);
        assert_eq!(req.query, q);
    }

    #[test]
    fn truncated_request_is_typed_with_recovered_id() {
        let full = encode_request(42, &query());
        for cut in 0..full.len() {
            match decode_request(&full[..cut]) {
                Ok(_) => assert_eq!(cut, full.len()),
                Err((id, e)) => {
                    assert_eq!(e.code, ErrorCode::Protocol, "cut at {cut}");
                    // Once tag + id are present the id must be recovered.
                    if cut >= 9 {
                        assert_eq!(id, 42, "cut at {cut}");
                    }
                }
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut full = encode_request(7, &query());
        full.push(0);
        let (id, e) = decode_request(&full).expect_err("trailing byte");
        assert_eq!(id, 7);
        assert_eq!(e.code, ErrorCode::Protocol);
    }

    #[test]
    fn error_response_roundtrip() {
        let e = WireError::overloaded();
        let resp = decode_response(&encode_error(9, &e)).expect("decode");
        assert_eq!(resp.id, 9);
        assert_eq!(resp.body, Err(e));
    }

    #[test]
    fn every_error_code_roundtrips() {
        for code in 1..=9u8 {
            let c = ErrorCode::from_u8(code).expect("code");
            assert_eq!(c as u8, code);
            let resp = decode_response(&encode_error(
                1,
                &WireError {
                    code: c,
                    message: "m".into(),
                },
            ))
            .expect("decode");
            assert_eq!(resp.body.unwrap_err().code, c);
        }
        assert!(ErrorCode::from_u8(0).is_none());
        assert!(ErrorCode::from_u8(10).is_none());
    }

    #[test]
    fn stats_request_roundtrip_and_rejects_garbage() {
        assert_eq!(decode_stats_request(&encode_stats_request(5)), Ok(5));
        let mut full = encode_stats_request(5);
        full.push(0);
        let (id, e) = decode_stats_request(&full).expect_err("trailing byte");
        assert_eq!(id, 5);
        assert_eq!(e.code, ErrorCode::Protocol);
        let (_, e) = decode_stats_request(&encode_request(1, &query())).expect_err("wrong tag");
        assert_eq!(e.code, ErrorCode::Protocol);
    }

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.set("pool/hits", Value::Counter(321));
        snap.set("serve/queue_depth", Value::Gauge(-2));
        let h = psi_obs::Histogram::new();
        for v in [1u64, 900, 7, 1 << 40] {
            h.record(v);
        }
        snap.set("wal/fsync_ns", Value::Histogram(h.snapshot()));
        snap.set("quarantine/age", Value::List(vec![0, 17, 41]));
        snap.set(
            "serve/empty_hist",
            Value::Histogram(HistSnapshot::default()),
        );
        snap
    }

    #[test]
    fn stats_reply_roundtrips_every_value_kind() {
        let snap = sample_snapshot();
        let (id, got) = decode_stats_reply(&encode_stats_reply(88, &snap)).expect("decode");
        assert_eq!(id, 88);
        assert_eq!(got, snap, "decoded snapshot is structurally identical");
    }

    #[test]
    fn truncated_stats_reply_is_typed_never_panics() {
        let full = encode_stats_reply(3, &sample_snapshot());
        for cut in 0..full.len() {
            match decode_stats_reply(&full[..cut]) {
                Ok(_) => assert_eq!(cut, full.len()),
                Err(e) => assert_eq!(e.code, ErrorCode::Protocol, "cut at {cut}"),
            }
        }
        let mut trailing = full.clone();
        trailing.push(9);
        assert_eq!(
            decode_stats_reply(&trailing).expect_err("trailing").code,
            ErrorCode::Protocol
        );
    }

    #[test]
    fn stats_reply_rejects_unknown_value_kind() {
        let mut b = MetaBuf::new();
        b.put_u8(MSG_STATS_REPLY);
        b.put_u64(1);
        b.put_len(1);
        b.put_str("x");
        b.put_u8(200); // not a known kind
        b.put_u64(0);
        let e = decode_stats_reply(b.bytes()).expect_err("bad kind");
        assert_eq!(e.code, ErrorCode::Protocol);
        assert!(e.message.contains("kind 200"), "{}", e.message);
    }

    #[test]
    fn oversized_frame_is_reported_before_allocation() {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let got = read_frame_blocking(&mut buf.as_slice(), MAX_FRAME_BYTES).expect("read");
        assert!(matches!(got, FrameIn::TooLarge(len) if len == u32::MAX));
    }

    #[test]
    fn clean_eof_is_closed_mid_frame_eof_is_error() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame_blocking(&mut { empty }, MAX_FRAME_BYTES).expect("eof"),
            FrameIn::Closed
        ));
        let mut partial: Vec<u8> = Vec::new();
        partial.extend_from_slice(&8u32.to_le_bytes());
        partial.extend_from_slice(&[1, 2, 3]); // 3 of 8 payload bytes
        let err = read_frame_blocking(&mut partial.as_slice(), MAX_FRAME_BYTES)
            .expect_err("mid-frame eof");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
