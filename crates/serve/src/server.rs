//! The psi-serve server: per-connection reader threads feed an admission
//! queue; one batcher thread drains it per tick — round-robin across
//! connections — into [`IndexedTable::execute_batch_settled`].
//!
//! ## Admission control
//!
//! A request is **admitted** when it is decoded and both budgets have
//! room: the global in-flight cap (`max_inflight`) and the per-connection
//! cap (`max_inflight_per_conn`). A request over budget is **shed**
//! immediately with a typed `Overloaded` response — it never queues, so
//! a saturated server's queue length (and thus its tail latency) is
//! bounded by construction. The per-connection cap plus the batcher's
//! round-robin drain give fairness: one hot client can fill at most its
//! own slice of the global budget and is drained no faster than anyone
//! else.
//!
//! ## Invariants
//!
//! * **Exactly one response per request frame** — rows, a typed error,
//!   or `Overloaded`; enforced structurally (each decoded frame takes
//!   exactly one of the three paths, and a settled batch answers every
//!   slot, even panicked ones).
//! * **No panics on malformed input** — frames decode through the
//!   bounds-checked `MetaCursor`; a frame too garbled to carry an id is
//!   answered with [`UNKNOWN_ID`] and the connection closed (framing is
//!   lost), anything later is answered in place.
//! * **Backpressure, not buffering**: over-budget work is refused at the
//!   door. The server never holds more than
//!   `max_inflight + connections` decoded requests.

use std::collections::BTreeMap;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use psi_obs::{Gauge, Histogram, Registry, RingLog, Snapshot, Value};
use psi_query::{ConjunctiveQuery, IndexedTable, PlanTrace};

use crate::wire::{
    encode_error, encode_rows, read_frame, write_frame, FrameIn, WireError, UNKNOWN_ID,
};

/// Tuning knobs for [`Server::serve`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Most requests drained into one `execute_batch_settled` call.
    pub batch_window: usize,
    /// Worker threads per batch (`1` on a single-core host; `0` means
    /// [`std::thread::available_parallelism`]).
    pub exec_threads: usize,
    /// Global cap on admitted-but-unanswered requests.
    pub max_inflight: usize,
    /// Per-connection share of the in-flight budget.
    pub max_inflight_per_conn: usize,
    /// Largest accepted frame payload.
    pub max_frame_bytes: u32,
    /// Admission-to-response latency (nanoseconds) at or above which a
    /// request is recorded in the slow-query ring log.
    pub slow_query_ns: u64,
    /// Newest slow queries retained (`0` disables the ring).
    pub slow_log_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_window: 32,
            exec_threads: 1,
            max_inflight: 256,
            max_inflight_per_conn: 64,
            max_frame_bytes: crate::wire::MAX_FRAME_BYTES,
            slow_query_ns: 50_000_000,
            slow_log_capacity: 64,
        }
    }
}

/// Counters observable while the server runs (monotone, relaxed).
#[derive(Debug, Default)]
struct Counters {
    admitted: AtomicU64,
    served_rows: AtomicU64,
    served_errors: AtomicU64,
    shed: AtomicU64,
    shed_global: AtomicU64,
    shed_conn: AtomicU64,
    protocol_errors: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
}

/// A point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Responses carrying rows.
    pub served_rows: u64,
    /// Responses carrying a typed execution error.
    pub served_errors: u64,
    /// Requests shed with `Overloaded`.
    pub shed: u64,
    /// Sheds caused by the global in-flight budget being full.
    pub shed_global: u64,
    /// Sheds caused by the offender's own per-connection cap
    /// (`shed == shed_global + shed_conn`).
    pub shed_conn: u64,
    /// Malformed frames answered with a protocol error.
    pub protocol_errors: u64,
    /// Ticks that executed at least one request.
    pub batches: u64,
    /// Largest single batch executed.
    pub max_batch: u64,
}

/// Per-connection admission totals (see [`Server::conn_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Requests from this connection shed with `Overloaded`.
    pub shed: u64,
    /// Responses (rows or typed error) served to this connection.
    pub served: u64,
}

/// One slow request as retained by the ring log: everything needed to
/// explain the latency after the fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Server-side connection id.
    pub conn: u64,
    /// Client-chosen request id.
    pub id: u64,
    /// Admission-to-response latency.
    pub elapsed_ns: u64,
    /// The executed plan — strategy, per-condition estimates vs.
    /// actuals, per-stage timings, blocks read, degraded fallbacks —
    /// when the request succeeded.
    pub trace: Option<PlanTrace>,
    /// The typed failure, when it did not.
    pub error: Option<String>,
}

/// The serve layer's own instruments. Owned per server (not resolved
/// from the global registry) so concurrent servers in one process —
/// the test suite, for instance — never bleed into each other; they
/// are injected into the [`Snapshot`] at `STATS` assembly instead.
#[derive(Debug)]
struct ServeObs {
    /// Requests queued for the batcher right now.
    queue_depth: Gauge,
    /// Requests per executed batch.
    batch_occupancy: Histogram,
    /// Admission-to-response latency per served request.
    request_ns: Histogram,
}

// ------------------------------------------------------------- transport

/// Either TCP or unix-domain; the protocol is transport-agnostic.
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }

    fn shutdown_both(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

// ----------------------------------------------------------- shared state

/// One admitted request waiting for the batcher.
struct Pending {
    conn: u64,
    id: u64,
    query: ConjunctiveQuery,
    /// Admission instant, for the request-latency histogram and the
    /// slow-query log (`None` with recording disabled).
    t0: Option<std::time::Instant>,
}

/// A connection's admission state.
struct ConnState {
    queue: VecDeque<Pending>,
    /// Admitted requests not yet answered (queued + executing).
    inflight: usize,
    /// Reader thread gone; entry removed once `inflight` drains to 0.
    closed: bool,
    writer: Arc<Mutex<Stream>>,
}

#[derive(Default)]
struct Inbox {
    conns: HashMap<u64, ConnState>,
    /// Total queued (not yet drained) requests, for cheap emptiness.
    queued: usize,
    /// Total admitted (queued + executing), bounded by `max_inflight`.
    inflight: usize,
    /// Round-robin position: drain resumes after this connection id.
    rr_last: u64,
}

struct Shared {
    table: Arc<IndexedTable>,
    cfg: ServeConfig,
    shutdown: AtomicBool,
    /// Reader threads currently running — the batcher only exits once
    /// this reaches zero at shutdown, so every admitted request is
    /// answered even if it was queued in the shutdown window.
    active_readers: std::sync::atomic::AtomicUsize,
    inbox: Mutex<Inbox>,
    work: Condvar,
    counters: Counters,
    obs: ServeObs,
    /// Shed/served totals per connection id; outlives the connection
    /// (the `Inbox` entry is removed once it drains).
    per_conn: Mutex<BTreeMap<u64, ConnStats>>,
    slow_log: RingLog<SlowQuery>,
}

impl Shared {
    fn stats(&self) -> ServeStats {
        let c = &self.counters;
        ServeStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            served_rows: c.served_rows.load(Ordering::Relaxed),
            served_errors: c.served_errors.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            shed_global: c.shed_global.load(Ordering::Relaxed),
            shed_conn: c.shed_conn.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            max_batch: c.max_batch.load(Ordering::Relaxed),
        }
    }

    /// The full live-stats snapshot the `STATS` wire op ships: the
    /// global registry (pool, planner, WAL, scrubber) plus this
    /// server's own counters, gauges, histograms, per-connection
    /// totals, and the served table's quarantined-extent lists.
    fn snapshot(&self) -> Snapshot {
        let mut snap = Registry::global().snapshot();
        let s = self.stats();
        snap.set("serve/admitted", Value::Counter(s.admitted));
        snap.set("serve/served_rows", Value::Counter(s.served_rows));
        snap.set("serve/served_errors", Value::Counter(s.served_errors));
        snap.set("serve/shed", Value::Counter(s.shed));
        snap.set("serve/shed_global", Value::Counter(s.shed_global));
        snap.set("serve/shed_conn", Value::Counter(s.shed_conn));
        snap.set("serve/protocol_errors", Value::Counter(s.protocol_errors));
        snap.set("serve/batches", Value::Counter(s.batches));
        snap.set("serve/max_batch", Value::Counter(s.max_batch));
        snap.set(
            "serve/queue_depth",
            Value::Gauge(self.obs.queue_depth.get()),
        );
        snap.set(
            "serve/batch_occupancy",
            Value::Histogram(self.obs.batch_occupancy.snapshot()),
        );
        snap.set(
            "serve/request_ns",
            Value::Histogram(self.obs.request_ns.snapshot()),
        );
        snap.set(
            "serve/slow_queries",
            Value::Counter(self.slow_log.len() as u64),
        );
        snap.set(
            "serve/slow_queries_evicted",
            Value::Counter(self.slow_log.dropped()),
        );
        for (&conn, cs) in self.per_conn.lock().expect("per_conn").iter() {
            snap.set(&format!("serve/conn/{conn}/shed"), Value::Counter(cs.shed));
            snap.set(
                &format!("serve/conn/{conn}/served"),
                Value::Counter(cs.served),
            );
        }
        // Which decode/intersect kernel paths actually ran: a live check
        // that the dispatched fast paths (SWAR vs. CPU-accelerated,
        // occupancy block-skip vs. gallop) are the ones serving queries.
        for (name, value) in psi_bits::kernel::snapshot() {
            snap.set(name, Value::Counter(value));
        }
        for (attr, extents) in self.table.quarantine_snapshot() {
            snap.set(
                &format!("quarantine/{attr}"),
                Value::List(extents.into_iter().map(u64::from).collect()),
            );
        }
        snap
    }
}

// ---------------------------------------------------------------- server

/// A running query server; dropping without [`Server::shutdown`] also
/// shuts down cleanly.
pub struct Server {
    shared: Arc<Shared>,
    listener_poke: Poke,
    accept: Option<std::thread::JoinHandle<()>>,
    batcher: Option<std::thread::JoinHandle<()>>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    tcp_addr: Option<SocketAddr>,
}

/// How to unblock the accept loop at shutdown.
enum Poke {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

impl Server {
    /// Binds a TCP listener on `127.0.0.1` (ephemeral port — read it back
    /// with [`Server::addr`]) and serves `table` until shutdown.
    pub fn serve(table: Arc<IndexedTable>, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        Self::run(
            table,
            cfg,
            Listener::Tcp(listener),
            Poke::Tcp(addr),
            Some(addr),
        )
    }

    /// Binds a unix-domain socket at `path` and serves `table`.
    pub fn serve_unix(
        table: Arc<IndexedTable>,
        cfg: ServeConfig,
        path: impl AsRef<Path>,
    ) -> io::Result<Server> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        Self::run(
            table,
            cfg,
            Listener::Unix(listener, path.clone()),
            Poke::Unix(path),
            None,
        )
    }

    fn run(
        table: Arc<IndexedTable>,
        cfg: ServeConfig,
        listener: Listener,
        listener_poke: Poke,
        tcp_addr: Option<SocketAddr>,
    ) -> io::Result<Server> {
        let shared = Arc::new(Shared {
            table,
            cfg,
            shutdown: AtomicBool::new(false),
            active_readers: std::sync::atomic::AtomicUsize::new(0),
            inbox: Mutex::new(Inbox::default()),
            work: Condvar::new(),
            counters: Counters::default(),
            obs: ServeObs {
                queue_depth: Gauge::new(),
                batch_occupancy: Histogram::new(),
                request_ns: Histogram::new(),
            },
            per_conn: Mutex::new(BTreeMap::new()),
            slow_log: RingLog::new(cfg.slow_log_capacity),
        });
        let readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            std::thread::Builder::new()
                .name("psi-serve-accept".into())
                .spawn(move || accept_loop(listener, shared, readers))?
        };
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("psi-serve-batch".into())
                .spawn(move || batch_loop(shared))?
        };
        Ok(Server {
            shared,
            listener_poke,
            accept: Some(accept),
            batcher: Some(batcher),
            readers,
            tcp_addr,
        })
    }

    /// The TCP address being served (`None` for unix-domain servers).
    pub fn addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// The same live metrics snapshot a `STATS` wire request returns —
    /// global registry plus this server's injected `serve/*` and
    /// `quarantine/*` entries.
    pub fn snapshot(&self) -> Snapshot {
        self.shared.snapshot()
    }

    /// Shed/served totals per connection id, ascending. Entries survive
    /// the connection closing.
    pub fn conn_stats(&self) -> Vec<(u64, ConnStats)> {
        self.shared
            .per_conn
            .lock()
            .expect("per_conn")
            .iter()
            .map(|(&id, &cs)| (id, cs))
            .collect()
    }

    /// The retained slow queries, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.shared.slow_log.snapshot()
    }

    /// Stops accepting, drains admitted work, joins every thread, and
    /// returns the final counters. Connected clients see EOF.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner();
        self.shared.stats()
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock accept with a throwaway connection; once it joins, no
        // new reader threads can appear.
        match &self.listener_poke {
            Poke::Tcp(addr) => drop(TcpStream::connect(addr)),
            Poke::Unix(path) => drop(UnixStream::connect(path)),
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Readers first: each notices the flag within one read timeout,
        // finishing any admission in progress — only then may the
        // batcher see a finally-empty queue and exit.
        let handles: Vec<_> = std::mem::take(&mut *self.readers.lock().expect("readers"));
        for h in handles {
            let _ = h.join();
        }
        self.shared.work.notify_all();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// ---------------------------------------------------------- accept loop

fn accept_loop(
    listener: Listener,
    shared: Arc<Shared>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    let mut next_conn: u64 = 1;
    loop {
        let stream = match &listener {
            // Nodelay on the server side too: response frames are small,
            // and Nagle + delayed ACK otherwise stalls a pipelined client
            // ~40ms per round (E19's closed loop hit exactly that wall).
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_id = next_conn;
        next_conn += 1;
        let shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("psi-serve-conn-{conn_id}"))
            .spawn(move || connection_loop(conn_id, stream, shared));
        if let Ok(h) = handle {
            readers.lock().expect("readers").push(h);
        }
    }
    if let Listener::Unix(_, path) = listener {
        let _ = std::fs::remove_file(path);
    }
}

// ------------------------------------------------------ connection loop

/// Reads frames until EOF/shutdown. Every decoded frame is answered by
/// exactly one of: queue for the batcher (admitted), `Overloaded`
/// (shed), or a protocol error (malformed).
fn connection_loop(conn_id: u64, stream: Stream, shared: Arc<Shared>) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    shared.active_readers.fetch_add(1, Ordering::SeqCst);
    // Decrements even if the loop below panics (it must not, but the
    // batcher's exit condition cannot hinge on that).
    struct ReaderGuard<'a>(&'a Shared);
    impl Drop for ReaderGuard<'_> {
        fn drop(&mut self) {
            self.0.active_readers.fetch_sub(1, Ordering::SeqCst);
            self.0.work.notify_all();
        }
    }
    let _guard = ReaderGuard(&shared);
    // Short read timeouts let the reader poll the shutdown flag without
    // losing stream sync (partial reads are resumed below).
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    shared.inbox.lock().expect("inbox").conns.insert(
        conn_id,
        ConnState {
            queue: VecDeque::new(),
            inflight: 0,
            closed: false,
            writer: Arc::clone(&writer),
        },
    );

    let mut reader = stream;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // `read_frame` with a resumable fill: a timeout mid-buffer keeps
        // the bytes already read and re-checks the shutdown flag.
        let fill = |buf: &mut [u8], eof_ok: bool| -> io::Result<bool> {
            let mut filled = 0;
            while filled < buf.len() {
                match reader.read(&mut buf[filled..]) {
                    Ok(0) => {
                        if eof_ok && filled == 0 {
                            return Ok(false);
                        }
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "peer closed mid-frame",
                        ));
                    }
                    Ok(n) => filled += n,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            return Err(io::Error::new(
                                io::ErrorKind::ConnectionAborted,
                                "server shutting down",
                            ));
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(true)
        };
        let payload = match read_frame(fill, shared.cfg.max_frame_bytes) {
            Ok(FrameIn::Payload(p)) => p,
            Ok(FrameIn::Closed) => break,
            Ok(FrameIn::TooLarge(len)) => {
                // Framing is gone (we refused to read the body): answer
                // typed, then close.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let err = WireError::protocol(format!(
                    "frame of {len} bytes exceeds cap {}",
                    shared.cfg.max_frame_bytes
                ));
                send(&writer, &encode_error(UNKNOWN_ID, &err));
                break;
            }
            Err(_) => break,
        };
        // STATS frames are answered inline, right here on the reader
        // thread: they bypass admission control and batching, so a
        // saturated (or even fully shedding) server still answers its
        // operator.
        if payload.first() == Some(&crate::wire::MSG_STATS) {
            match crate::wire::decode_stats_request(&payload) {
                Ok(id) => {
                    let reply = crate::wire::encode_stats_reply(id, &shared.snapshot());
                    send(&writer, &reply);
                }
                Err((id, err)) => {
                    shared
                        .counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    send(&writer, &encode_error(id, &err));
                }
            }
            continue;
        }
        match crate::wire::decode_request(&payload) {
            Ok(req) => admit(conn_id, req.id, req.query, &writer, &shared),
            Err((id, err)) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                send(&writer, &encode_error(id, &err));
                if id == UNKNOWN_ID {
                    // Could not even parse the header — close rather than
                    // risk misattributing later frames.
                    break;
                }
            }
        }
    }

    // Hand the entry's fate to the batcher if it still owes responses.
    let mut inbox = shared.inbox.lock().expect("inbox");
    if let Some(cs) = inbox.conns.get_mut(&conn_id) {
        cs.closed = true;
        if cs.inflight == 0 {
            inbox.conns.remove(&conn_id);
        }
    }
    drop(inbox);
    writer.lock().expect("writer").shutdown_both();
}

/// Admission control: shed over budget, queue otherwise.
fn admit(
    conn_id: u64,
    id: u64,
    query: ConjunctiveQuery,
    writer: &Arc<Mutex<Stream>>,
    shared: &Shared,
) {
    let t0 = psi_obs::enabled().then(std::time::Instant::now);
    let mut inbox = shared.inbox.lock().expect("inbox");
    let global_full = inbox.inflight >= shared.cfg.max_inflight;
    let Some(cs) = inbox.conns.get_mut(&conn_id) else {
        return;
    };
    if global_full || cs.inflight >= shared.cfg.max_inflight_per_conn {
        drop(inbox);
        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        // Causes are disjoint: the global budget is checked first, so a
        // request over both caps is accounted a global shed.
        if global_full {
            shared.counters.shed_global.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.counters.shed_conn.fetch_add(1, Ordering::Relaxed);
        }
        shared
            .per_conn
            .lock()
            .expect("per_conn")
            .entry(conn_id)
            .or_default()
            .shed += 1;
        send(writer, &encode_error(id, &WireError::overloaded()));
        return;
    }
    cs.inflight += 1;
    cs.queue.push_back(Pending {
        conn: conn_id,
        id,
        query,
        t0,
    });
    inbox.inflight += 1;
    inbox.queued += 1;
    shared.obs.queue_depth.set(inbox.queued as i64);
    shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
    drop(inbox);
    shared.work.notify_one();
}

/// Writes one frame, swallowing errors (the peer may be gone — its
/// requests still settle, the responses just have nowhere to go).
fn send(writer: &Arc<Mutex<Stream>>, payload: &[u8]) {
    let mut w = writer.lock().expect("writer");
    let _ = write_frame(&mut *w, payload);
}

// ---------------------------------------------------------- batch loop

/// Drains up to `batch_window` requests per tick — round-robin across
/// connections — executes them as one settled batch, and answers each
/// slot.
fn batch_loop(shared: Arc<Shared>) {
    loop {
        let mut inbox = shared.inbox.lock().expect("inbox");
        while inbox.queued == 0 {
            if shared.shutdown.load(Ordering::SeqCst)
                && shared.active_readers.load(Ordering::SeqCst) == 0
            {
                return;
            }
            let (guard, _) = shared
                .work
                .wait_timeout(inbox, Duration::from_millis(25))
                .expect("inbox");
            inbox = guard;
        }
        let batch = drain_fair(&mut inbox, shared.cfg.batch_window);
        shared.obs.queue_depth.set(inbox.queued as i64);
        let writers: Vec<Arc<Mutex<Stream>>> = batch
            .iter()
            .map(|p| Arc::clone(&inbox.conns[&p.conn].writer))
            .collect();
        drop(inbox);

        let queries: Vec<ConjunctiveQuery> = batch.iter().map(|p| p.query.clone()).collect();
        let settled = shared
            .table
            .execute_batch_settled(&queries, shared.cfg.exec_threads);
        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        shared.obs.batch_occupancy.record(batch.len() as u64);

        let mut served_per_conn: HashMap<u64, u64> = HashMap::new();
        for ((p, result), writer) in batch.iter().zip(&settled).zip(&writers) {
            let payload = match result {
                Ok(outcome) => {
                    shared.counters.served_rows.fetch_add(1, Ordering::Relaxed);
                    encode_rows(p.id, outcome)
                }
                Err(e) => {
                    shared
                        .counters
                        .served_errors
                        .fetch_add(1, Ordering::Relaxed);
                    encode_error(p.id, &WireError::from(e))
                }
            };
            send(writer, &payload);
            *served_per_conn.entry(p.conn).or_default() += 1;
            if let Some(t0) = p.t0 {
                let elapsed_ns = t0.elapsed().as_nanos() as u64;
                shared.obs.request_ns.record(elapsed_ns);
                if elapsed_ns >= shared.cfg.slow_query_ns {
                    shared.slow_log.push(SlowQuery {
                        conn: p.conn,
                        id: p.id,
                        elapsed_ns,
                        trace: result.as_ref().ok().map(|o| o.trace.clone()),
                        error: result.as_ref().err().map(|e| e.to_string()),
                    });
                }
            }
        }
        if !served_per_conn.is_empty() {
            let mut per_conn = shared.per_conn.lock().expect("per_conn");
            for (conn, n) in served_per_conn {
                per_conn.entry(conn).or_default().served += n;
            }
        }

        // Release the in-flight budget only after the responses went out
        // (admission counts queued + executing).
        let mut inbox = shared.inbox.lock().expect("inbox");
        for p in &batch {
            inbox.inflight -= 1;
            if let Some(cs) = inbox.conns.get_mut(&p.conn) {
                cs.inflight -= 1;
                if cs.closed && cs.inflight == 0 {
                    inbox.conns.remove(&p.conn);
                }
            }
        }
    }
}

/// Pops up to `window` pending requests, one per connection per round,
/// resuming after the connection the previous tick ended on.
fn drain_fair(inbox: &mut Inbox, window: usize) -> Vec<Pending> {
    let mut ids: Vec<u64> = inbox
        .conns
        .iter()
        .filter(|(_, c)| !c.queue.is_empty())
        .map(|(&id, _)| id)
        .collect();
    ids.sort_unstable();
    if ids.is_empty() {
        return Vec::new();
    }
    // Rotate so the first candidate is the lowest id after `rr_last`.
    let start = ids.partition_point(|&id| id <= inbox.rr_last) % ids.len();
    ids.rotate_left(start);
    let mut out = Vec::with_capacity(window.min(inbox.queued));
    'outer: loop {
        let mut any = false;
        for &id in &ids {
            let cs = inbox.conns.get_mut(&id).expect("listed conn");
            if let Some(p) = cs.queue.pop_front() {
                inbox.queued -= 1;
                inbox.rr_last = id;
                out.push(p);
                any = true;
                if out.len() >= window {
                    break 'outer;
                }
            }
        }
        if !any {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(conn: u64, id: u64) -> Pending {
        Pending {
            conn,
            id,
            query: ConjunctiveQuery {
                conditions: Vec::new(),
            },
            t0: None,
        }
    }

    fn inbox_with(queues: &[(u64, &[u64])]) -> Inbox {
        let mut inbox = Inbox::default();
        for &(conn, ids) in queues {
            let queue: VecDeque<Pending> = ids.iter().map(|&id| pending(conn, id)).collect();
            inbox.queued += queue.len();
            inbox.inflight += queue.len();
            inbox.conns.insert(
                conn,
                ConnState {
                    inflight: queue.len(),
                    queue,
                    closed: false,
                    writer: Arc::new(Mutex::new(Stream::Tcp(loopback_stream()))),
                },
            );
        }
        inbox
    }

    /// A connected-to-nowhere-in-particular TCP stream for tests.
    fn loopback_stream() -> TcpStream {
        let l = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let s = TcpStream::connect(l.local_addr().expect("addr")).expect("connect");
        let _ = l.accept();
        s
    }

    #[test]
    fn drain_round_robins_across_connections() {
        let mut inbox = inbox_with(&[(1, &[10, 11, 12]), (2, &[20]), (3, &[30, 31])]);
        let got: Vec<(u64, u64)> = drain_fair(&mut inbox, 6)
            .iter()
            .map(|p| (p.conn, p.id))
            .collect();
        // One per connection per round: a 3-deep queue cannot starve the
        // 1-deep ones.
        assert_eq!(
            got,
            vec![(1, 10), (2, 20), (3, 30), (1, 11), (3, 31), (1, 12)]
        );
        assert_eq!(inbox.queued, 0);
    }

    #[test]
    fn drain_resumes_after_previous_position() {
        let mut inbox = inbox_with(&[(1, &[10, 11]), (2, &[20, 21]), (3, &[30, 31])]);
        let first: Vec<u64> = drain_fair(&mut inbox, 2).iter().map(|p| p.conn).collect();
        assert_eq!(first, vec![1, 2]);
        // The window cut mid-round at conn 2 — the next tick starts at 3.
        let second: Vec<u64> = drain_fair(&mut inbox, 2).iter().map(|p| p.conn).collect();
        assert_eq!(second, vec![3, 1]);
        let third: Vec<u64> = drain_fair(&mut inbox, 4).iter().map(|p| p.conn).collect();
        assert_eq!(third, vec![2, 3]);
    }

    #[test]
    fn drain_respects_window() {
        let mut inbox = inbox_with(&[(1, &[10, 11, 12, 13])]);
        assert_eq!(drain_fair(&mut inbox, 3).len(), 3);
        assert_eq!(inbox.queued, 1);
    }
}
