//! # psi-serve — a batched, pipelined network front-end for the query
//! engine
//!
//! The ROADMAP's north star is an index that "serves millions of users"
//! — which means a wire protocol, backpressure, and open-loop tail
//! latency, none of which the in-process benchmarks can measure. This
//! crate is that front-end:
//!
//! * [`wire`] — a length-prefixed binary protocol over TCP or
//!   unix-domain sockets, encoded with the store's bounds-checked
//!   `MetaBuf`/`MetaCursor` primitives. Malformed frames get typed
//!   protocol errors, never panics.
//! * [`Server`] — per-connection reader threads feed an admission
//!   queue; one batcher thread drains it per tick (round-robin across
//!   connections for fairness) into
//!   `IndexedTable::execute_batch_settled`, so concurrent requests
//!   share buffer-pool locality and a failing request settles into its
//!   own response slot.
//! * **Admission control** — a global and a per-connection in-flight
//!   cap; over-budget requests are shed *at the door* with a typed
//!   [`wire::ErrorCode::Overloaded`] response, bounding queue length
//!   (and therefore tail latency) by construction. Pool-budget
//!   exhaustion inside execution (`PoolError::Exhausted`) surfaces the
//!   same way: a typed retryable error for that request alone.
//! * [`Client`] — a pipelined client: `send` and `recv` are
//!   independent, responses correlate by id, and [`Client::split`]
//!   gives separately owned halves for open-loop load generation.
//! * **Live stats** — a `STATS` wire op ([`Client::stats`]) answered
//!   inline by the connection's reader thread (it bypasses admission
//!   control and batching, so a saturated server still answers its
//!   operator) with a [`psi_obs::Snapshot`]: the global registry
//!   (pool, planner, WAL, scrubber) plus this server's `serve/*`
//!   counters, latency/occupancy histograms, per-connection totals,
//!   and the served table's `quarantine/*` extent lists. Requests
//!   slower than [`ServeConfig::slow_query_ns`] land in a bounded
//!   [`SlowQuery`] ring log with their full plan trace.
//!
//! The contract the soak suite pins: **every request frame the server
//! reads gets exactly one response** — rows, a typed error, or
//! `Overloaded` — and non-shed responses are bit-identical to a direct
//! `IndexedTable::execute` of the same query.

#![warn(missing_docs)]

mod client;
mod server;
pub mod wire;

pub use client::{Client, Receiver, Sender};
pub use server::{ConnStats, ServeConfig, ServeStats, Server, SlowQuery};
