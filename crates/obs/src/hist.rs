//! Fixed-bucket log-scale histograms.
//!
//! The bucket layout is HDR-style: values below 2³ land in one exact
//! bucket each; above that, every power-of-two octave is split into
//! 8 linear sub-buckets, so the relative quantization error is bounded
//! by 1/8 ≈ 12.5% at any magnitude up to `u64::MAX`. The whole table is
//! 496 buckets — flat `AtomicU64`s, no allocation after construction —
//! and recording is a single relaxed `fetch_add` into one bucket (plus
//! one into the running sum), which is what makes the histogram safe on
//! per-event hot paths and trivially mergeable: merging is bucket-wise
//! addition, and a quiescent snapshot's `count` equals the exact number
//! of recorded ops.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Linear sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total buckets: one exact bucket per value below `SUB`, then 8 per
/// octave for the remaining `64 - SUB_BITS` octaves.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// Bucket index for a recorded value. Total over all of `u64`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    // Highest set bit m >= SUB_BITS: octave (m - SUB_BITS + 1) with the
    // next SUB_BITS bits selecting the linear sub-bucket.
    let m = 63 - v.leading_zeros();
    let octave = (m - SUB_BITS + 1) as usize;
    let sub = ((v >> (m - SUB_BITS)) - SUB) as usize;
    (octave << SUB_BITS) + sub
}

/// Inclusive upper bound of bucket `i` (the value reported for any
/// sample that landed in it — quantiles round *up* to a bucket edge).
fn bucket_high(i: usize) -> u64 {
    let octave = (i >> SUB_BITS) as u32;
    let sub = i as u64 & (SUB - 1);
    if octave == 0 {
        return sub;
    }
    ((SUB + sub + 1) << (octave - 1)).wrapping_sub(1)
}

/// A lock-free fixed-bucket log-scale histogram. See the module docs
/// for the layout and consistency contract.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    /// Running sum of recorded values (wrapping; for means, not totals).
    sum: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh empty histogram (one heap allocation of 496 words).
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the array through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> =
            v.into_boxed_slice().try_into().expect("exact length");
        Histogram {
            buckets,
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample: one relaxed `fetch_add` into its bucket and
    /// one into the running sum.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Records the elapsed nanoseconds since `start` (saturating at
    /// `u64::MAX`); the common latency-instrumentation shape.
    #[inline]
    pub fn record_since(&self, start: std::time::Instant) {
        if crate::enabled() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.record(ns);
        }
    }

    /// Point-in-time copy. Bucket loads are relaxed: concurrent
    /// recorders may or may not be included (each op atomically lands
    /// in exactly one bucket, so nothing is torn or double-counted),
    /// and once recording quiesces `count` equals the exact number of
    /// recorded ops.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut count = 0u64;
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                count += n;
                buckets.push((bucket_high(i), n));
            }
        }
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Adds every bucket of `other` into `self` (bucket-wise; both
    /// histograms share the fixed layout so merging never re-quantizes).
    pub fn merge_from(&self, other: &HistSnapshot) {
        for &(high, n) in &other.buckets {
            self.buckets[bucket_of(high)].fetch_add(n, Ordering::Relaxed);
        }
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
    }

    /// Zeroes all buckets (bench/test harnesses only; concurrent
    /// recorders may interleave).
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time histogram: `(bucket upper bound, count)` for every
/// non-empty bucket, ascending.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Total recorded ops (sum of bucket counts).
    pub count: u64,
    /// Sum of recorded values (wrapping).
    pub sum: u64,
    /// `(inclusive upper bound, count)` per non-empty bucket, ascending
    /// by bound.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// The quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)` (so
    /// `quantile(1.0)` is an upper bound on the maximum sample). Zero
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(high, n) in &self.buckets {
            cum += n;
            if cum >= target {
                return high;
            }
        }
        self.buckets.last().map(|&(high, _)| high).unwrap_or(0)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_total_and_monotone() {
        // Every probe value lands in a bucket whose bound is >= the
        // value and within 12.5% relative slack.
        let probes: Vec<u64> = (0..64)
            .flat_map(|s| {
                let base = 1u64 << s;
                [
                    base,
                    base + base / 3,
                    base + base / 2,
                    base.saturating_sub(1),
                ]
            })
            .chain([0, 1, 2, 3, 7, 8, 9, u64::MAX, u64::MAX - 1])
            .collect();
        for &v in &probes {
            let i = bucket_of(v);
            assert!(i < BUCKETS, "v={v} -> bucket {i}");
            let high = bucket_high(i);
            assert!(high >= v, "v={v} high={high}");
            if i > 0 {
                let prev_high = bucket_high(i - 1);
                assert!(prev_high < v, "v={v} belongs above bucket {}", i - 1);
            }
            // Relative quantization error <= 1/8 (exact below 8).
            if v >= 8 {
                assert!(
                    (high - v) as f64 <= v as f64 / 8.0 + 1.0,
                    "v={v} high={high}: quantization too coarse"
                );
            }
        }
        // Bucket bounds strictly increase across the whole table.
        for i in 1..BUCKETS {
            assert!(bucket_high(i) > bucket_high(i - 1), "bucket {i}");
        }
    }

    #[test]
    fn record_snapshot_quantile() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert!((s.mean() - 500.5).abs() < 1e-9);
        // Quantiles land within one bucket (12.5%) of the true order
        // statistic, and never below it.
        for (q, truth) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (1.0, 1000)] {
            let est = s.quantile(q);
            assert!(est >= truth, "q={q}: {est} < {truth}");
            assert!(
                est as f64 <= truth as f64 * 1.13 + 1.0,
                "q={q}: {est} vs {truth}"
            );
        }
        assert_eq!(HistSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [5u64, 100, 100, 4096, 1 << 40] {
            a.record(v);
        }
        for v in [5u64, 77, 1 << 40] {
            b.record(v);
        }
        a.merge_from(&b.snapshot());
        let merged = a.snapshot();
        assert_eq!(merged.count, 8);
        // Merging re-inserts at bucket upper bounds, which stay in the
        // same buckets, so counts add exactly.
        let direct = Histogram::new();
        for v in [5u64, 100, 100, 4096, 1 << 40, 5, 77, 1 << 40] {
            direct.record(v);
        }
        assert_eq!(
            merged.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
            direct
                .snapshot()
                .buckets
                .iter()
                .map(|&(_, n)| n)
                .sum::<u64>()
        );
        assert_eq!(merged.buckets.len(), direct.snapshot().buckets.len());
    }

    #[test]
    fn reset_empties() {
        let h = Histogram::new();
        h.record(9);
        h.reset();
        assert_eq!(h.snapshot(), HistSnapshot::default());
    }
}
