//! # psi-obs — always-on metrics for the psi workspace
//!
//! A dependency-free observability substrate sitting at the bottom of
//! the crate graph so every layer (io-model, query, wal, serve) can
//! instrument itself without cycles or feature flags:
//!
//! * [`Counter`] / [`Gauge`] — single relaxed atomic words.
//! * [`Histogram`] — fixed-bucket log-scale (8 linear sub-buckets per
//!   power of two), lock-free to record, mergeable, and
//!   snapshot-consistent: every recorded op lands in exactly one
//!   bucket, so a quiescent snapshot's total equals the number of
//!   recorded ops bit-exactly (pinned by the concurrency proptest in
//!   `tests/concurrency.rs`).
//! * [`Registry`] — named get-or-create instrument handles. Handles are
//!   `Arc`s resolved **once at construction** of the instrumented
//!   component; the hot path then pays one relaxed atomic RMW per
//!   event, never a name lookup or a lock.
//! * [`Snapshot`] — a point-in-time, order-stable rendering of a
//!   registry (plus any caller-injected entries such as per-server
//!   counters or quarantine lists), with a human-readable [`Snapshot::render`].
//! * [`RingLog`] — a bounded, overwrite-oldest ring for structured
//!   records (the slow-query log in psi-serve).
//!
//! ## Hot-path contract
//!
//! Recording is gated on one process-global relaxed [`AtomicBool`]
//! ([`set_enabled`]): with metrics on (the default) an event costs one
//! relaxed load plus one relaxed `fetch_add`; with metrics off it costs
//! the load alone. The gate exists so the E19 overhead experiment can
//! measure instrumented-vs-stripped on the same binary — it is **not** a
//! feature flag, and nothing in the workspace turns it off outside
//! benchmarks. Per-word decode loops (see `psi_io::IoSession`'s
//! deliberately non-atomic design note) are *not* instrumented here;
//! instruments attach at per-event granularity only (a block fetch, a
//! query completion, a commit), where a relaxed RMW is noise.

mod hist;
mod registry;
mod ring;
mod snapshot;

pub use hist::{HistSnapshot, Histogram, BUCKETS};
pub use registry::{Instrument, Registry};
pub use ring::RingLog;
pub use snapshot::{Snapshot, Value};

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Process-global recording gate. `true` from process start.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns recording on or off process-wide. Off, every instrument's
/// record methods become a single relaxed load. Reads (`get`,
/// snapshots) are unaffected. Used by the E19 overhead harness; leave
/// it on everywhere else.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotone event counter: one relaxed `AtomicU64`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (bench/test harnesses only).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A settable signed level: one relaxed `AtomicI64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zero gauge.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Moves the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge (bench/test harnesses only).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    // The `set_enabled` gate is process-global, so toggling it would
    // race with sibling unit tests recording concurrently; its test
    // lives alone in `tests/enable_gate.rs` (own process).
}
