//! Point-in-time snapshots and their text rendering.
//!
//! A [`Snapshot`] is the *transport* form of a registry: plain data,
//! sorted by name, structurally comparable (`PartialEq`) so "the wire
//! decoded what the server held" is one `assert_eq!`. Callers may
//! inject entries the registry does not own — per-server admission
//! counters, quarantined-extent lists — before shipping it; psi-serve's
//! `STATS` op encodes exactly this structure over MetaBuf (the encoding
//! lives with the wire format in psi-serve, keeping this crate
//! dependency-free).

use crate::hist::HistSnapshot;

/// One snapshot entry value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Monotone counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram contents.
    Histogram(HistSnapshot),
    /// An injected list (e.g. quarantined extent ids per attribute).
    List(Vec<u64>),
}

/// A point-in-time metrics snapshot: `(name, value)` sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Entries, ascending by name, at most one per name.
    pub entries: Vec<(String, Value)>,
}

impl Snapshot {
    /// Inserts or replaces the entry `name`, keeping order.
    pub fn set(&mut self, name: &str, value: Value) {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (name.to_string(), value)),
        }
    }

    /// The entry `name`, if present.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter total at `name` (`None` if absent or another kind).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            Value::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge level at `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            Value::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram at `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        match self.get(name)? {
            Value::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// List at `name`.
    pub fn list(&self, name: &str) -> Option<&[u64]> {
        match self.get(name)? {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Human-readable rendering: one aligned line per entry; histograms
    /// show count/mean/p50/p90/p99/max-bound. This is what the psi
    /// client prints for a `STATS` reply.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let width = self
            .entries
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max(12);
        let mut out = String::new();
        for (name, value) in &self.entries {
            let _ = match value {
                Value::Counter(v) => writeln!(out, "{name:<width$}  {v}"),
                Value::Gauge(v) => writeln!(out, "{name:<width$}  {v} (gauge)"),
                Value::Histogram(h) => writeln!(
                    out,
                    "{name:<width$}  n={} mean={:.0} p50={} p90={} p99={} max<={}",
                    h.count,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.quantile(1.0),
                ),
                Value::List(v) => writeln!(
                    out,
                    "{name:<width$}  [{}]",
                    v.iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_keeps_sorted_and_replaces() {
        let mut s = Snapshot::default();
        s.set("b", Value::Counter(1));
        s.set("a", Value::Gauge(-1));
        s.set("c", Value::List(vec![3, 4]));
        s.set("b", Value::Counter(9));
        let names: Vec<&str> = s.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(s.counter("b"), Some(9));
        assert_eq!(s.gauge("a"), Some(-1));
        assert_eq!(s.list("c"), Some(&[3u64, 4][..]));
        assert_eq!(s.counter("a"), None, "kind-checked accessor");
        assert_eq!(s.get("zzz"), None);
    }

    #[test]
    fn render_mentions_every_entry() {
        let mut s = Snapshot::default();
        s.set("pool/hits", Value::Counter(17));
        s.set("serve/queue_depth", Value::Gauge(3));
        let h = crate::Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        s.set("wal/fsync_ns", Value::Histogram(h.snapshot()));
        s.set("quarantine/age", Value::List(vec![2, 5]));
        let text = s.render();
        for needle in [
            "pool/hits",
            "17",
            "queue_depth",
            "fsync_ns",
            "n=3",
            "[2, 5]",
        ] {
            assert!(text.contains(needle), "{needle:?} missing from:\n{text}");
        }
    }
}
