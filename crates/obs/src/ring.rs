//! A bounded, overwrite-oldest ring for structured records.
//!
//! The slow-query log's substrate: producers push under a short mutex
//! (slow-path only — pushes happen at most once per *slow* query, never
//! per event), the ring keeps the newest `capacity` records, and a
//! counter remembers how many were evicted so the log is honest about
//! truncation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A bounded ring log. See the module docs.
#[derive(Debug)]
pub struct RingLog<T> {
    cap: usize,
    inner: Mutex<VecDeque<T>>,
    dropped: AtomicU64,
}

impl<T: Clone> RingLog<T> {
    /// A ring keeping the newest `capacity` records (`0` keeps none —
    /// a disabled log).
    pub fn new(capacity: usize) -> Self {
        RingLog {
            cap: capacity,
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&self, record: T) {
        if self.cap == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut q = self.inner.lock().expect("ring poisoned");
        if q.len() == self.cap {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.inner
            .lock()
            .expect("ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Records evicted (or refused by a zero-capacity ring) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Maximum retained records.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Currently retained records.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring poisoned").len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_and_counts_drops() {
        let r = RingLog::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.snapshot(), vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let r = RingLog::new(0);
        r.push(1);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }
}
