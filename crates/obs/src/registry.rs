//! The named-instrument registry.
//!
//! A [`Registry`] maps hierarchical names (`"pool/hits"`,
//! `"wal/fsync_ns"`) to shared instruments. Resolution
//! (`counter`/`gauge`/`histogram`) is get-or-create under a mutex and
//! returns an `Arc` handle; instrumented components resolve their
//! handles **once at construction** and the lock is never touched again
//! on the hot path. [`Registry::global`] is the process-wide instance
//! every psi layer records into; tests that need isolation construct
//! their own.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;
use crate::snapshot::{Snapshot, Value};
use crate::{Counter, Gauge};

/// One registered instrument (shared handle).
#[derive(Debug, Clone)]
pub enum Instrument {
    /// Monotone counter.
    Counter(Arc<Counter>),
    /// Signed level.
    Gauge(Arc<Gauge>),
    /// Log-scale histogram.
    Histogram(Arc<Histogram>),
}

/// A named-instrument registry. See the module docs.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Instrument>>,
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Registry {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-global registry every psi layer records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: Registry = Registry::new();
        &GLOBAL
    }

    fn resolve<T>(
        &self,
        name: &str,
        make: impl FnOnce() -> Instrument,
        pick: impl FnOnce(&Instrument) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut map = self.inner.lock().expect("registry poisoned");
        let entry = map.entry(name.to_string()).or_insert_with(make).clone();
        pick(&entry).unwrap_or_else(|| {
            panic!("instrument {name:?} already registered with a different kind")
        })
    }

    /// Get-or-create the counter `name`. Panics if `name` is already a
    /// gauge or histogram (an instrumentation bug, caught at
    /// construction time, never on the hot path).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.resolve(
            name,
            || Instrument::Counter(Arc::new(Counter::new())),
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get-or-create the gauge `name` (same kind rules as [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.resolve(
            name,
            || Instrument::Gauge(Arc::new(Gauge::new())),
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get-or-create the histogram `name` (same kind rules as
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.resolve(
            name,
            || Instrument::Histogram(Arc::new(Histogram::new())),
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// A point-in-time [`Snapshot`] of every registered instrument,
    /// sorted by name. Each instrument is read with relaxed loads (see
    /// `Histogram::snapshot` for the consistency contract).
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().expect("registry poisoned");
        let mut snap = Snapshot::default();
        for (name, inst) in map.iter() {
            let value = match inst {
                Instrument::Counter(c) => Value::Counter(c.get()),
                Instrument::Gauge(g) => Value::Gauge(g.get()),
                Instrument::Histogram(h) => Value::Histogram(h.snapshot()),
            };
            snap.set(name, value);
        }
        snap
    }

    /// Zeroes every registered instrument in place (handles stay
    /// valid). Bench/test harnesses only.
    pub fn reset(&self) {
        let map = self.inner.lock().expect("registry poisoned");
        for inst in map.values() {
            match inst {
                Instrument::Counter(c) => c.reset(),
                Instrument::Gauge(g) => g.reset(),
                Instrument::Histogram(h) => h.reset(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let r = Registry::new();
        let a = r.counter("x/hits");
        let b = r.counter("x/hits");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x/hits").get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_sorted_and_reset() {
        let r = Registry::new();
        r.counter("b/count").add(5);
        r.gauge("a/level").set(-2);
        r.histogram("c/ns").record(100);
        let s = r.snapshot();
        let names: Vec<&str> = s.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a/level", "b/count", "c/ns"]);
        assert_eq!(s.counter("b/count"), Some(5));
        assert_eq!(s.gauge("a/level"), Some(-2));
        assert_eq!(s.histogram("c/ns").map(|h| h.count), Some(1));
        r.reset();
        let s = r.snapshot();
        assert_eq!(s.counter("b/count"), Some(0));
        assert_eq!(s.histogram("c/ns").map(|h| h.count), Some(0));
    }
}
