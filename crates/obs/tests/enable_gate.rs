//! The process-global recording gate, tested alone in its own binary:
//! `psi_obs::set_enabled` races with any concurrently recording test,
//! so no other test may share this process.

use psi_obs::{set_enabled, Counter, Gauge, Histogram};

#[test]
fn disabling_gates_recording_but_not_reads() {
    let c = Counter::new();
    let g = Gauge::new();
    let h = Histogram::new();
    c.inc();
    g.set(5);
    h.record(100);

    set_enabled(false);
    c.add(100);
    g.set(9);
    g.add(3);
    h.record(100);
    assert_eq!(c.get(), 1, "counter records while disabled are dropped");
    assert_eq!(g.get(), 5, "gauge writes while disabled are dropped");
    assert_eq!(
        h.snapshot().count,
        1,
        "histogram records while disabled are dropped"
    );

    set_enabled(true);
    c.inc();
    h.record(200);
    assert_eq!(c.get(), 2);
    assert_eq!(h.snapshot().count, 2);
}
