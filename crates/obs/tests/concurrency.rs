//! Multi-threaded record-vs-snapshot properties (ISSUE 9 satellite):
//! a histogram hammered from several threads never tears — every
//! recorded op lands in exactly one bucket, a concurrent snapshot's
//! total is monotone and bounded by the ops issued so far, and the
//! quiescent snapshot's totals equal the recorded ops bit-exactly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use psi_obs::{Histogram, Registry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // N threads each record a disjoint slice of `values`; after joining,
    // the snapshot count equals the number of ops, the sum equals the
    // value sum, and per-bucket counts match a sequential replay.
    #[test]
    fn quiescent_snapshot_equals_recorded_ops(
        values in proptest::collection::vec(0u64..1u64 << 48, 1..4000),
        threads in 2usize..6,
    ) {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = Arc::clone(&h);
                let chunk: Vec<u64> = values
                    .iter()
                    .copied()
                    .skip(t)
                    .step_by(threads)
                    .collect();
                scope.spawn(move || {
                    for v in chunk {
                        h.record(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64, "no op lost or double-counted");
        prop_assert_eq!(
            snap.sum,
            values.iter().fold(0u64, |a, &v| a.wrapping_add(v)),
            "sum matches"
        );
        prop_assert_eq!(
            snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
            snap.count,
            "count is the bucket total"
        );
        // Bucket-exact against a sequential replay.
        let seq = Histogram::new();
        for &v in &values {
            seq.record(v);
        }
        prop_assert_eq!(snap, seq.snapshot());
    }

    // Snapshots taken *while* recorders run: counts only grow (no torn
    // or negative reads) and never exceed the ops issued.
    #[test]
    fn concurrent_snapshots_are_monotone_and_bounded(
        values in proptest::collection::vec(0u64..1u64 << 32, 64..2000),
    ) {
        let h = Arc::new(Histogram::new());
        let done = Arc::new(AtomicBool::new(false));
        let total = values.len() as u64;
        std::thread::scope(|scope| {
            let recorder = {
                let h = Arc::clone(&h);
                let done = Arc::clone(&done);
                let values = values.clone();
                scope.spawn(move || {
                    for v in values {
                        h.record(v);
                    }
                    done.store(true, Ordering::Release);
                })
            };
            let mut last = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = h.snapshot();
                assert!(snap.count >= last, "snapshot count went backwards");
                assert!(snap.count <= total, "snapshot count exceeds ops issued");
                last = snap.count;
            }
            recorder.join().expect("recorder");
        });
        prop_assert_eq!(h.snapshot().count, total);
    }
}

// Counters resolved through a shared registry from many threads: the
// handles all alias one instrument and the total is exact.
#[test]
fn registry_counter_is_exact_across_threads() {
    let r = Registry::new();
    let per_thread = 10_000u64;
    let threads = 8;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let handle = r.counter("stress/total");
            scope.spawn(move || {
                for _ in 0..per_thread {
                    handle.inc();
                }
            });
        }
    });
    assert_eq!(r.counter("stress/total").get(), per_thread * threads);
    assert_eq!(
        r.snapshot().counter("stress/total"),
        Some(per_thread * threads)
    );
}
