//! The on-disk file layout.
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────────────┐
//! │ superblock — one 4096-byte page                                    │
//! │   magic "PSISTOR1" · version · volume count · region offsets/      │
//! │   lengths · expected file length · family tag · FNV-1a checksum    │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ extent table — 4096-byte pages (4088 payload + 8 checksum each)    │
//! │   per volume: IoConfig (block bits, memory bound) + per extent:    │
//! │   bit length · freed flag · payload file offset                    │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ index metadata — 4096-byte pages, same checksum trailer            │
//! │   the family's memory-resident state (MetaBuf bytes)               │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ payload — per live extent, one page per model block:               │
//! │   (block_bits/8) data bytes + 8-byte FNV-1a, so every real block   │
//! │   fetch verifies its own checksum                                  │
//! └────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Metadata regions are read (and verified) in full at open time — they
//! are the state the I/O model assumes memory-resident. Payload pages are
//! fetched lazily through the buffer pool, one model block at a time.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use psi_io::{Disk, ExtentId, IoConfig};

use crate::ser::{MetaBuf, MetaCursor};
use crate::sum::fnv1a64;
use crate::StoreError;

/// File magic: the first 8 bytes of every store file.
pub const MAGIC: [u8; 8] = *b"PSISTOR1";
/// Format version written by this build.
/// (3 widened the persisted skip-directory entries to 144 bits —
/// occupancy words — and added the tail-exactness flag to slot metadata;
/// 2 is reserved for checkpoint files, see
/// [`crate::checkpoint::VERSION_CHECKPOINT`].)
pub const VERSION: u32 = 3;
/// Size of superblock and metadata pages.
pub const META_PAGE: usize = 4096;
/// Payload bytes per metadata page (the rest is the checksum trailer).
pub const META_PAGE_PAYLOAD: usize = META_PAGE - 8;
/// Longest accepted family tag.
pub const MAX_TAG: usize = 64;

/// Placement of one extent's payload in the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtPlacement {
    /// Valid bits in the extent.
    pub bit_len: u64,
    /// Whether the extent was freed when saved.
    pub freed: bool,
    /// Byte offset of the extent's first payload page (`u64::MAX` when
    /// the extent stores nothing).
    pub file_off: u64,
}

/// One volume: an [`IoConfig`] plus its extent placements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeDesc {
    /// The model configuration the volume's disk was built with.
    pub config: IoConfig,
    /// Extent placements, in extent-id order.
    pub extents: Vec<ExtPlacement>,
}

impl VolumeDesc {
    /// Payload-page size for this volume: one model block plus checksum.
    pub fn page_bytes(&self) -> u64 {
        self.config.block_bits / 8 + 8
    }
}

/// Everything read and verified at open time.
#[derive(Debug)]
pub struct StoreHeader {
    /// Index-family tag recorded at save time.
    pub tag: String,
    /// Volume descriptors (extent tables).
    pub volumes: Vec<VolumeDesc>,
    /// The family's serialized metadata region.
    pub meta: Vec<u8>,
    /// Expected total file length in bytes.
    pub file_bytes: u64,
}

/// Serializes the volume/extent table.
pub(crate) fn encode_table(volumes: &[VolumeDesc]) -> Vec<u8> {
    let mut b = MetaBuf::new();
    for v in volumes {
        b.put_u64(v.config.block_bits);
        b.put_opt_u64(v.config.mem_blocks.map(|m| m as u64));
        b.put_len(v.extents.len());
        for e in &v.extents {
            b.put_u64(e.bit_len);
            b.put_bool(e.freed);
            b.put_u64(e.file_off);
        }
    }
    b.bytes().to_vec()
}

/// Parses the volume/extent table (`volume_count` from the superblock).
pub(crate) fn decode_table(bytes: &[u8], volume_count: u32) -> Result<Vec<VolumeDesc>, StoreError> {
    let mut c = MetaCursor::new(bytes);
    let mut volumes = Vec::new();
    for _ in 0..volume_count {
        let block_bits = c.get_u64()?;
        if block_bits == 0 || !block_bits.is_multiple_of(64) {
            return Err(StoreError::Meta {
                what: format!("volume block_bits {block_bits}"),
            });
        }
        let mem_blocks = c.get_opt_u64()?.map(|m| m as usize);
        let n = c.get_len(17)?;
        let mut extents = Vec::with_capacity(n);
        for _ in 0..n {
            extents.push(ExtPlacement {
                bit_len: c.get_u64()?,
                freed: c.get_bool()?,
                file_off: c.get_u64()?,
            });
        }
        volumes.push(VolumeDesc {
            config: IoConfig {
                block_bits,
                mem_blocks,
            },
            extents,
        });
    }
    Ok(volumes)
}

/// Number of metadata pages a region of `len` bytes occupies.
pub(crate) fn meta_pages(len: usize) -> u64 {
    (len.div_ceil(META_PAGE_PAYLOAD).max(1)) as u64
}

/// Writes a region as checksummed metadata pages.
pub(crate) fn write_paged(out: &mut impl Write, bytes: &[u8]) -> Result<(), StoreError> {
    let pages = meta_pages(bytes.len()) as usize;
    for p in 0..pages {
        let mut page = [0u8; META_PAGE];
        let start = p * META_PAGE_PAYLOAD;
        let end = bytes.len().min(start + META_PAGE_PAYLOAD);
        if start < end {
            page[..end - start].copy_from_slice(&bytes[start..end]);
        }
        let sum = fnv1a64(&page[..META_PAGE_PAYLOAD]);
        page[META_PAGE_PAYLOAD..].copy_from_slice(&sum.to_le_bytes());
        out.write_all(&page)?;
    }
    Ok(())
}

/// Reads and verifies a paged region of logical length `len`.
pub(crate) fn read_paged(
    file: &mut File,
    off: u64,
    len: usize,
    what: &str,
) -> Result<Vec<u8>, StoreError> {
    file.seek(SeekFrom::Start(off))?;
    let pages = meta_pages(len) as usize;
    let mut out = Vec::with_capacity(len);
    let mut page = [0u8; META_PAGE];
    for p in 0..pages {
        file.read_exact(&mut page).map_err(|e| map_eof(e, what))?;
        let want = u64::from_le_bytes(page[META_PAGE_PAYLOAD..].try_into().expect("8 bytes"));
        if fnv1a64(&page[..META_PAGE_PAYLOAD]) != want {
            return Err(StoreError::Corrupt {
                what: format!("{what} page {p}"),
            });
        }
        let take = (len - out.len()).min(META_PAGE_PAYLOAD);
        out.extend_from_slice(&page[..take]);
    }
    Ok(out)
}

pub(crate) fn map_eof(e: std::io::Error, what: &str) -> StoreError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        StoreError::Truncated { what: what.into() }
    } else {
        StoreError::from(e)
    }
}

/// Writes one extent's payload as `blocks` checksummed pages (one page
/// per model block of `block_bits` bits, words LE, 8-byte FNV trailer).
pub(crate) fn write_extent_pages(
    out: &mut impl Write,
    words: &[u64],
    blocks: u64,
    block_bits: u64,
) -> Result<(), StoreError> {
    let block_words = (block_bits / 64) as usize;
    let mut page = vec![0u8; (block_bits / 8 + 8) as usize];
    for blk in 0..blocks as usize {
        let start = blk * block_words;
        for (w, chunk) in page[..block_words * 8].chunks_exact_mut(8).enumerate() {
            let word = words.get(start + w).copied().unwrap_or(0);
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        let sum = fnv1a64(&page[..block_words * 8]);
        let sum_at = block_words * 8;
        page[sum_at..sum_at + 8].copy_from_slice(&sum.to_le_bytes());
        out.write_all(&page)?;
    }
    Ok(())
}

/// Builds the volume descriptors for a set of resident disks, assigning
/// payload offsets sequentially from `payload_off`.
pub(crate) fn plan_volumes(
    disks: &[&Disk],
    payload_off: u64,
) -> Result<(Vec<VolumeDesc>, u64), StoreError> {
    let mut off = payload_off;
    let mut volumes = Vec::with_capacity(disks.len());
    for disk in disks {
        let page_bytes = disk.block_bits() / 8 + 8;
        let mut extents = Vec::with_capacity(disk.num_extents());
        for i in 0..disk.num_extents() {
            let ext = ExtentId(i as u32);
            if !disk.is_resident(ext) {
                return Err(StoreError::NotResident);
            }
            let bit_len = disk.extent_bits(ext);
            let freed = disk.is_freed(ext);
            let blocks = disk.config().blocks_for_bits(bit_len);
            let file_off = if blocks == 0 { u64::MAX } else { off };
            off += blocks * page_bytes;
            extents.push(ExtPlacement {
                bit_len,
                freed,
                file_off,
            });
        }
        volumes.push(VolumeDesc {
            config: *disk.config(),
            extents,
        });
    }
    Ok((volumes, off))
}

/// Writes a complete store file; returns its size in bytes.
///
/// The write is crash-safe: everything goes to a sibling temp file,
/// which is fsynced and atomically renamed over `path` — a crash
/// mid-save leaves the previous store intact.
pub fn write_store(
    path: &Path,
    tag: &str,
    meta: &[u8],
    disks: &[&Disk],
) -> Result<u64, StoreError> {
    assert!(tag.len() <= MAX_TAG, "family tag too long");
    // Plan the layout: the table's byte length is known before the
    // payload offsets are (17 bytes per extent, fixed per-volume header),
    // so one planning pass suffices.
    let table_len_probe = encode_table(&plan_volumes(disks, 0)?.0).len();
    let table_off = META_PAGE as u64;
    let meta_off = table_off + meta_pages(table_len_probe) * META_PAGE as u64;
    let payload_off = meta_off + meta_pages(meta.len()) * META_PAGE as u64;
    let (volumes, file_bytes) = plan_volumes(disks, payload_off)?;
    let table = encode_table(&volumes);
    debug_assert_eq!(table.len(), table_len_probe);

    let mut sb = [0u8; META_PAGE];
    sb[0..8].copy_from_slice(&MAGIC);
    sb[8..12].copy_from_slice(&VERSION.to_le_bytes());
    sb[12..16].copy_from_slice(&(disks.len() as u32).to_le_bytes());
    sb[16..24].copy_from_slice(&table_off.to_le_bytes());
    sb[24..32].copy_from_slice(&(table.len() as u64).to_le_bytes());
    sb[32..40].copy_from_slice(&meta_off.to_le_bytes());
    sb[40..48].copy_from_slice(&(meta.len() as u64).to_le_bytes());
    sb[48..56].copy_from_slice(&file_bytes.to_le_bytes());
    sb[56..60].copy_from_slice(&(tag.len() as u32).to_le_bytes());
    sb[60..60 + tag.len()].copy_from_slice(tag.as_bytes());
    let sum = fnv1a64(&sb[..META_PAGE_PAYLOAD]);
    sb[META_PAGE_PAYLOAD..].copy_from_slice(&sum.to_le_bytes());

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let file = File::create(&tmp)?;
    let mut out = std::io::BufWriter::new(file);
    out.write_all(&sb)?;
    write_paged(&mut out, &table)?;
    write_paged(&mut out, meta)?;
    // Payload: one checksummed page per model block, in extent order.
    for disk in disks {
        for i in 0..disk.num_extents() {
            let ext = ExtentId(i as u32);
            let blocks = disk.config().blocks_for_bits(disk.extent_bits(ext));
            write_extent_pages(&mut out, disk.extent_words(ext), blocks, disk.block_bits())?;
        }
    }
    out.flush()?;
    out.get_ref().sync_all()?;
    drop(out);
    std::fs::rename(&tmp, path)?;
    Ok(file_bytes)
}

/// Opens a store file and reads + verifies everything except payload:
/// superblock, extent table, index metadata, and the expected length.
pub fn read_header(path: &Path) -> Result<(File, StoreHeader), StoreError> {
    let mut file = File::open(path)?;
    let mut sb = [0u8; META_PAGE];
    file.read_exact(&mut sb)
        .map_err(|e| map_eof(e, "superblock"))?;
    if sb[0..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(sb[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(StoreError::BadVersion { found: version });
    }
    let want = u64::from_le_bytes(sb[META_PAGE_PAYLOAD..].try_into().expect("8 bytes"));
    if fnv1a64(&sb[..META_PAGE_PAYLOAD]) != want {
        return Err(StoreError::Corrupt {
            what: "superblock".into(),
        });
    }
    let volume_count = u32::from_le_bytes(sb[12..16].try_into().expect("4 bytes"));
    let table_off = u64::from_le_bytes(sb[16..24].try_into().expect("8 bytes"));
    let table_len = u64::from_le_bytes(sb[24..32].try_into().expect("8 bytes")) as usize;
    let meta_off = u64::from_le_bytes(sb[32..40].try_into().expect("8 bytes"));
    let meta_len = u64::from_le_bytes(sb[40..48].try_into().expect("8 bytes")) as usize;
    let file_bytes = u64::from_le_bytes(sb[48..56].try_into().expect("8 bytes"));
    let tag_len = u32::from_le_bytes(sb[56..60].try_into().expect("4 bytes")) as usize;
    if tag_len > MAX_TAG {
        return Err(StoreError::Corrupt {
            what: format!("superblock tag length {tag_len}"),
        });
    }
    let tag =
        String::from_utf8(sb[60..60 + tag_len].to_vec()).map_err(|_| StoreError::Corrupt {
            what: "superblock tag".into(),
        })?;
    let table = read_paged(&mut file, table_off, table_len, "extent table")?;
    let volumes = decode_table(&table, volume_count)?;
    let meta = read_paged(&mut file, meta_off, meta_len, "index metadata")?;
    // The payload is fetched lazily; its presence is checked now so a
    // truncated file fails at open, not mid-query.
    let actual = file.metadata()?.len();
    if actual < file_bytes {
        return Err(StoreError::Truncated {
            what: format!("payload region ({actual} of {file_bytes} bytes)"),
        });
    }
    Ok((
        file,
        StoreHeader {
            tag,
            volumes,
            meta,
            file_bytes,
        },
    ))
}

/// Verifies every payload page's checksum (a full-file scrub). The
/// metadata regions are verified as part of [`read_header`]; this walks
/// the lazily-fetched payload too, so corruption that would otherwise
/// surface mid-query is caught eagerly.
pub fn scrub(path: &Path) -> Result<(), StoreError> {
    let (mut file, header) = read_header(path)?;
    for (v, vol) in header.volumes.iter().enumerate() {
        let page_bytes = vol.page_bytes() as usize;
        let mut page = vec![0u8; page_bytes];
        for (i, e) in vol.extents.iter().enumerate() {
            if e.file_off == u64::MAX {
                continue;
            }
            let blocks = vol.config.blocks_for_bits(e.bit_len);
            file.seek(SeekFrom::Start(e.file_off))?;
            for blk in 0..blocks {
                let what = format!("volume {v} extent {i} block {blk}");
                file.read_exact(&mut page)
                    .map_err(|err| map_eof(err, &what))?;
                let data = page_bytes - 8;
                let want = u64::from_le_bytes(page[data..].try_into().expect("8 bytes"));
                if fnv1a64(&page[..data]) != want {
                    return Err(StoreError::Corrupt { what });
                }
            }
        }
    }
    Ok(())
}
