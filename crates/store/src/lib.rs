//! # psi-store — the persistent storage subsystem
//!
//! Every index family in the `psi` workspace lays its payload out on a
//! simulated [`psi_io::Disk`] whose costs are *charged*, not performed.
//! This crate makes those structures durable and the charges real:
//!
//! * an **on-disk format** ([`format`]) — superblock, checksummed
//!   extent-table and metadata pages, and per-block checksummed payload
//!   pages, one per model block of every extent;
//! * two **real-read backends** — positioned file reads ([`Backend::File`])
//!   and a read-only mmap ([`Backend::Mmap`]) — slotted behind
//!   [`psi_io::BlockStore`], with the in-RAM disk as the third, default
//!   backend;
//! * the **pinning buffer pool** (`psi_io::BufferPool`) between
//!   [`psi_io::IoSession`] charging and the backend: on an opened store a
//!   charged block read drives a real fetch on miss and a free hit while
//!   pooled, so for a cold pool the real blocks fetched *equal* the
//!   simulated charge, and with a warm pool they are at most it;
//! * [`save`]/[`open`] round-trips for every [`PersistIndex`] family: an
//!   opened index answers `query`, `cardinality_hint` and conjunctive
//!   plans identically — bit-identical `RidSet`s, identical `IoStats` —
//!   to the index it was saved from;
//! * **incremental checkpoints** ([`checkpoint`]) — a dual-superblock
//!   format-v2 file that absorbs updates by appending only dirty extents
//!   and flipping an epoch-stamped slot, the durable-write-path half of
//!   psi-wal's checkpoint + log-replay recovery.
//!
//! Open-time validation returns typed [`StoreError`]s (bad magic, bad
//! version, checksum mismatch, truncation, wrong family) — never panics.

#![warn(missing_docs)]

pub mod checkpoint;
mod error;
pub mod format;
mod persist;
mod raw;
pub mod ser;
mod sum;
mod volume;

pub use checkpoint::{
    checkpoint_epoch, checkpoint_slot_epochs, open_checkpoint, CheckpointFile, CheckpointReport,
    VERSION_CHECKPOINT,
};
pub use error::StoreError;
pub use format::VERSION;
pub use persist::{
    check_extent, open, open_with_wrap, save, single_volume, sweep_stale_tmp, Backend, OpenOptions,
    Opened, PersistIndex, SaveReport, StoreWrap,
};
pub use ser::{MetaBuf, MetaCursor};
pub use sum::fnv1a64;
