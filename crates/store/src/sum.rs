//! FNV-1a 64-bit checksums for superblock, metadata pages and payload
//! pages. Not cryptographic — the threat model is bit rot and truncation,
//! matching the typed errors of [`crate::StoreError`].

/// FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
