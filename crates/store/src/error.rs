//! Typed errors for every open/validate path — corrupt or truncated
//! files are reported, never panicked on.

use std::fmt;

use psi_io::ErrorClass;

/// Everything that can go wrong saving or opening a store file.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem error, classified for retryability:
    /// [`ErrorClass::Transient`] failures (interrupted syscall, momentary
    /// pressure) are worth repeating under a `RetryPolicy`;
    /// [`ErrorClass::Permanent`] ones are not. Mirrors the
    /// `PoolError::Exhausted` precedent of structured, matchable failure
    /// instead of a lumped passthrough.
    Io {
        /// Whether retrying the same operation can succeed.
        class: ErrorClass,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The file does not start with the `PSISTOR1` magic.
    BadMagic,
    /// The file's format version is not one this build reads.
    BadVersion {
        /// Version number found in the superblock.
        found: u32,
    },
    /// A checksum mismatch (superblock, a metadata page, or a payload
    /// page).
    Corrupt {
        /// Which region failed verification.
        what: String,
    },
    /// The file ends before a region it promises to contain.
    Truncated {
        /// Which region was cut short.
        what: String,
    },
    /// The index metadata region could not be decoded.
    Meta {
        /// What the decoder was reading when it failed.
        what: String,
    },
    /// The file holds a different index family than requested.
    WrongFamily {
        /// Tag of the family the caller asked for.
        expected: String,
        /// Tag recorded in the file.
        found: String,
    },
    /// A disk handed to `save` has non-resident extents (an opened,
    /// file-backed index must be promoted before re-saving).
    NotResident,
    /// Caller-supplied open options are unusable (e.g. a zero-capacity
    /// buffer pool).
    InvalidOptions {
        /// What was wrong with the options.
        what: String,
    },
}

impl StoreError {
    /// Retry classification of this error: only a transient I/O failure
    /// is worth repeating. A checksum mismatch is [`ErrorClass::Corrupt`]
    /// — quarantine-and-rebuild territory, never retried — and every
    /// other structural error (bad magic, truncation, …) is permanent by
    /// nature.
    pub fn class(&self) -> ErrorClass {
        match self {
            StoreError::Io { class, .. } => *class,
            StoreError::Corrupt { .. } => ErrorClass::Corrupt,
            _ => ErrorClass::Permanent,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { class, source } => {
                let kind = match class {
                    ErrorClass::Transient => "transient",
                    ErrorClass::Permanent => "permanent",
                    ErrorClass::Corrupt => "corrupt",
                };
                write!(f, "{kind} i/o error: {source}")
            }
            StoreError::BadMagic => write!(f, "not a psi-store file (bad magic)"),
            StoreError::BadVersion { found } => {
                write!(f, "unsupported store version {found}")
            }
            StoreError::Corrupt { what } => write!(f, "checksum mismatch in {what}"),
            StoreError::Truncated { what } => write!(f, "file truncated in {what}"),
            StoreError::Meta { what } => write!(f, "malformed index metadata: {what}"),
            StoreError::WrongFamily { expected, found } => {
                write!(
                    f,
                    "file holds index family `{found}`, expected `{expected}`"
                )
            }
            StoreError::NotResident => {
                write!(f, "disk has non-resident extents; promote before saving")
            }
            StoreError::InvalidOptions { what } => write!(f, "invalid open options: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io {
            class: psi_io::classify_io(e.kind()),
            source: e,
        }
    }
}
