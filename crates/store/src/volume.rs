//! One volume of an opened store, shaped as a [`BlockStore`]: the
//! bridge between the buffer pool's fetches and the raw file/mmap bytes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use psi_io::{BlockStore, BlockStoreError, ExtentId};

use crate::format::VolumeDesc;
use crate::raw::RawBytes;
use crate::sum::fnv1a64;

/// Serves one volume's payload pages out of a shared raw byte source,
/// verifying each page's checksum and counting every real fetch into a
/// store-wide shared atomic counter (fetches arrive from whichever query
/// thread takes the pool miss).
#[derive(Debug)]
pub struct VolumeStore {
    raw: Arc<dyn RawBytes>,
    /// Fetch counter shared across all volumes of one opened store.
    fetches: Arc<AtomicU64>,
    desc: VolumeDesc,
    volume: usize,
}

impl VolumeStore {
    /// Wraps volume `volume` of an opened store.
    pub fn new(
        raw: Arc<dyn RawBytes>,
        fetches: Arc<AtomicU64>,
        desc: VolumeDesc,
        volume: usize,
    ) -> Self {
        VolumeStore {
            raw,
            fetches,
            desc,
            volume,
        }
    }
}

impl VolumeStore {
    /// Shared body of the raw/verified reads: fetches the page, decodes
    /// its words, and — when `verify` — checks the FNV-1a trailer,
    /// classifying a mismatch as [`psi_io::ErrorClass::Corrupt`].
    fn read_page(
        &self,
        ext: ExtentId,
        block: u64,
        out: &mut [u64],
        verify: bool,
    ) -> Result<(), BlockStoreError> {
        // Structural failures (missing extent, out-of-range block) are
        // permanent: retrying the same read cannot change the file. OS
        // read failures carry their own classification; a trailer
        // mismatch is corruption — quarantine-and-rebuild territory.
        let e = self.desc.extents.get(ext.0 as usize).ok_or_else(|| {
            BlockStoreError::permanent(format!("volume {} has no extent {}", self.volume, ext.0))
        })?;
        let blocks = self.desc.config.blocks_for_bits(e.bit_len);
        if e.file_off == u64::MAX || block >= blocks {
            return Err(BlockStoreError::permanent(format!(
                "extent {} block {block} out of range ({} blocks)",
                ext.0, blocks
            )));
        }
        let page_bytes = self.desc.page_bytes() as usize;
        let mut page = vec![0u8; page_bytes];
        self.raw
            .read_at(e.file_off + block * page_bytes as u64, &mut page)
            .map_err(|err| BlockStoreError {
                message: format!("extent {} block {block}: {err}", ext.0),
                class: err.class(),
            })?;
        let data = page_bytes - 8;
        if verify {
            let want = u64::from_le_bytes(page[data..].try_into().expect("8 bytes"));
            if fnv1a64(&page[..data]) != want {
                return Err(BlockStoreError::corrupt(format!(
                    "checksum mismatch in extent {} block {block}",
                    ext.0
                )));
            }
        }
        for (slot, chunk) in out.iter_mut().zip(page[..data].chunks_exact(8)) {
            *slot = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
        self.fetches.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl BlockStore for VolumeStore {
    fn read_block(
        &self,
        ext: ExtentId,
        block: u64,
        out: &mut [u64],
    ) -> Result<(), BlockStoreError> {
        self.read_page(ext, block, out, false)
    }

    fn read_block_verified(
        &self,
        ext: ExtentId,
        block: u64,
        out: &mut [u64],
    ) -> Result<(), BlockStoreError> {
        self.read_page(ext, block, out, true)
    }

    fn fetches(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    fn kind(&self) -> &'static str {
        self.raw.kind()
    }
}
