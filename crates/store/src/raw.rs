//! Positioned-read sources for payload pages: a plain file descriptor
//! and an mmap'd region.

use std::fs::File;

use crate::StoreError;

/// A source of positioned byte reads over an immutable store file.
///
/// `Send + Sync`: one raw source is shared by every volume's
/// [`psi_io::BlockStore`] and fetched through from any query thread (the
/// sharded buffer pool fetches under per-shard locks, so concurrent
/// `read_at` calls are the norm — both backends are positioned reads
/// with no seek state).
pub trait RawBytes: std::fmt::Debug + Send + Sync {
    /// Fills `out` from byte offset `off`.
    fn read_at(&self, off: u64, out: &mut [u8]) -> Result<(), StoreError>;

    /// Backend name (`"file"` / `"mmap"`).
    fn kind(&self) -> &'static str;
}

/// File-descriptor backend: every block fetch is a positioned `pread`.
#[derive(Debug)]
pub struct RawFile {
    file: File,
    /// Targets without positioned reads fall back to seek+read, which
    /// must be serialized — per file, not process-wide.
    #[cfg(not(unix))]
    seek_lock: std::sync::Mutex<()>,
}

impl RawFile {
    /// Wraps an open store file.
    pub fn new(file: File) -> Self {
        RawFile {
            file,
            #[cfg(not(unix))]
            seek_lock: std::sync::Mutex::new(()),
        }
    }
}

impl RawBytes for RawFile {
    #[cfg(unix)]
    fn read_at(&self, off: u64, out: &mut [u8]) -> Result<(), StoreError> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(out, off).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Truncated {
                    what: format!("payload read at byte {off}"),
                }
            } else {
                StoreError::from(e)
            }
        })
    }

    #[cfg(not(unix))]
    fn read_at(&self, off: u64, out: &mut [u8]) -> Result<(), StoreError> {
        use std::io::{Read, Seek, SeekFrom};
        // No positioned read on this target: serialize the seek+read pair
        // so concurrent fetches cannot interleave on this file's cursor
        // (independent stores keep fetching in parallel).
        let _guard = self.seek_lock.lock().expect("seek lock");
        let mut f = &self.file;
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(out).map_err(StoreError::from)
    }

    fn kind(&self) -> &'static str {
        "file"
    }
}

/// Mmap backend: the whole store file mapped read-only; block fetches
/// copy out of the mapping (and still verify their page checksum).
///
/// On unix this is a real `mmap(2)` through a local FFI declaration (the
/// build environment vendors no `libc` crate; the symbols come from the
/// C library `std` already links). Elsewhere it degrades to a one-shot
/// full-file preload with identical semantics.
#[derive(Debug)]
pub struct RawMmap {
    inner: MmapInner,
}

#[cfg(unix)]
#[derive(Debug)]
struct MmapInner {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is created PROT_READ/MAP_PRIVATE and never remapped
// or written through; `ptr`/`len` are immutable after construction, so
// concurrent `read_at` calls from any thread only perform overlapping
// reads of read-only memory. `munmap` runs in `Drop`, which takes `&mut`
// — exclusive by construction.
#[cfg(unix)]
unsafe impl Send for MmapInner {}
#[cfg(unix)]
unsafe impl Sync for MmapInner {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

#[cfg(unix)]
impl RawMmap {
    /// Maps the whole file read-only.
    pub fn new(file: &File) -> Result<Self, StoreError> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Err(StoreError::Truncated {
                what: "empty file".into(),
            });
        }
        // SAFETY: mapping `len` bytes of an open fd read-only/private; the
        // pointer is checked against MAP_FAILED and unmapped in Drop.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(StoreError::from(std::io::Error::last_os_error()));
        }
        Ok(RawMmap {
            inner: MmapInner {
                ptr: ptr as *const u8,
                len,
            },
        })
    }
}

#[cfg(unix)]
impl Drop for MmapInner {
    fn drop(&mut self) {
        // SAFETY: this mapping was created by mmap in RawMmap::new.
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
    }
}

#[cfg(unix)]
impl RawBytes for RawMmap {
    fn read_at(&self, off: u64, out: &mut [u8]) -> Result<(), StoreError> {
        let off = off as usize;
        if off + out.len() > self.inner.len {
            return Err(StoreError::Truncated {
                what: format!("mmap read at byte {off}"),
            });
        }
        // SAFETY: bounds checked against the mapping length above.
        unsafe {
            std::ptr::copy_nonoverlapping(self.inner.ptr.add(off), out.as_mut_ptr(), out.len());
        }
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "mmap"
    }
}

#[cfg(not(unix))]
#[derive(Debug)]
struct MmapInner {
    bytes: Vec<u8>,
}

#[cfg(not(unix))]
impl RawMmap {
    /// Preloads the whole file (mmap fallback for non-unix targets).
    pub fn new(file: &File) -> Result<Self, StoreError> {
        use std::io::Read;
        let mut bytes = Vec::new();
        let mut f = file;
        f.read_to_end(&mut bytes)?;
        Ok(RawMmap {
            inner: MmapInner { bytes },
        })
    }
}

#[cfg(not(unix))]
impl RawBytes for RawMmap {
    fn read_at(&self, off: u64, out: &mut [u8]) -> Result<(), StoreError> {
        let off = off as usize;
        if off + out.len() > self.inner.bytes.len() {
            return Err(StoreError::Truncated {
                what: format!("preload read at byte {off}"),
            });
        }
        out.copy_from_slice(&self.inner.bytes[off..off + out.len()]);
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "mmap"
    }
}
