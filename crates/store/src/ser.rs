//! Little-endian, length-prefixed primitives for the index-metadata
//! region of a store file.
//!
//! Every index family serializes its memory-resident state (directories,
//! tree mirrors, prefix arrays) through [`MetaBuf`] and decodes it back
//! through [`MetaCursor`]. The cursor is fully bounds-checked: malformed
//! input yields [`StoreError::Meta`], never a panic — the metadata region
//! is checksummed, but the decoder does not rely on that.

use crate::StoreError;

/// An append-only byte buffer for index metadata.
#[derive(Debug, Default)]
pub struct MetaBuf {
    bytes: Vec<u8>,
}

impl MetaBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The serialized bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Appends a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends an optional `u64` (presence byte + value).
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Appends an optional `u32`.
    pub fn put_opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u32(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_vec_u64(&mut self, v: &[u64]) {
        self.put_len(v.len());
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_vec_u32(&mut self, v: &[u32]) {
        self.put_len(v.len());
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.bytes.extend_from_slice(s.as_bytes());
    }
}

/// A bounds-checked reading cursor over serialized metadata.
#[derive(Debug)]
pub struct MetaCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> MetaCursor<'a> {
    /// A cursor over `bytes` from the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        MetaCursor { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Meta {
                what: format!("{what}: needed {n} bytes, {} left", self.remaining()),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a length prefix, validated against the bytes remaining so a
    /// corrupted length cannot drive a huge allocation.
    pub fn get_len(&mut self, elem_bytes: usize) -> Result<usize, StoreError> {
        let v = self.get_u64()?;
        let cap = (self.remaining() / elem_bytes.max(1)) as u64;
        if v > cap {
            return Err(StoreError::Meta {
                what: format!("length {v} exceeds remaining input ({cap} elements)"),
            });
        }
        Ok(v as usize)
    }

    /// Reads a boolean byte (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, StoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StoreError::Meta {
                what: format!("boolean byte {b}"),
            }),
        }
    }

    /// Reads an optional `u64`.
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, StoreError> {
        Ok(if self.get_bool()? {
            Some(self.get_u64()?)
        } else {
            None
        })
    }

    /// Reads an optional `u32`.
    pub fn get_opt_u32(&mut self) -> Result<Option<u32>, StoreError> {
        Ok(if self.get_bool()? {
            Some(self.get_u32()?)
        } else {
            None
        })
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn get_vec_u64(&mut self) -> Result<Vec<u64>, StoreError> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_u64()).collect()
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn get_vec_u32(&mut self) -> Result<Vec<u32>, StoreError> {
        let n = self.get_len(4)?;
        (0..n).map(|_| self.get_u32()).collect()
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let n = self.get_len(1)?;
        let b = self.take(n, "string")?;
        String::from_utf8(b.to_vec()).map_err(|_| StoreError::Meta {
            what: "non-UTF-8 string".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut b = MetaBuf::new();
        b.put_u8(7);
        b.put_u32(0xDEAD);
        b.put_u64(u64::MAX - 3);
        b.put_bool(true);
        b.put_opt_u64(Some(42));
        b.put_opt_u64(None);
        b.put_opt_u32(Some(5));
        b.put_vec_u64(&[1, 2, 3]);
        b.put_vec_u32(&[9, 8]);
        b.put_str("psi");
        let mut c = MetaCursor::new(b.bytes());
        assert_eq!(c.get_u8().unwrap(), 7);
        assert_eq!(c.get_u32().unwrap(), 0xDEAD);
        assert_eq!(c.get_u64().unwrap(), u64::MAX - 3);
        assert!(c.get_bool().unwrap());
        assert_eq!(c.get_opt_u64().unwrap(), Some(42));
        assert_eq!(c.get_opt_u64().unwrap(), None);
        assert_eq!(c.get_opt_u32().unwrap(), Some(5));
        assert_eq!(c.get_vec_u64().unwrap(), vec![1, 2, 3]);
        assert_eq!(c.get_vec_u32().unwrap(), vec![9, 8]);
        assert_eq!(c.get_str().unwrap(), "psi");
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn truncated_input_errors_not_panics() {
        let mut b = MetaBuf::new();
        b.put_u64(1);
        let mut c = MetaCursor::new(&b.bytes()[..3]);
        assert!(matches!(c.get_u64(), Err(StoreError::Meta { .. })));
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut b = MetaBuf::new();
        b.put_u64(u64::MAX); // absurd element count
        let mut c = MetaCursor::new(b.bytes());
        assert!(matches!(c.get_vec_u64(), Err(StoreError::Meta { .. })));
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let mut c = MetaCursor::new(&[2]);
        assert!(matches!(c.get_bool(), Err(StoreError::Meta { .. })));
    }
}
