//! Incremental, crash-atomic checkpoints (format version 2).
//!
//! [`crate::format::write_store`] is save-the-world: every byte of every
//! extent is rewritten on every save. The durable write path checkpoints
//! far more often than it rewrites, so this module stores a *checkpoint
//! file* that can absorb an update by writing only what changed:
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────────────┐
//! │ superblock slot A — one 4096-byte page (epoch-stamped, checksummed)│
//! ├────────────────────────────────────────────────────────────────────┤
//! │ superblock slot B — the alternate slot                             │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ regions — extent table · metadata · payload pages, located by      │
//! │ whichever slot is live; updates append fresh regions at the end    │
//! │ and never overwrite a live page                                    │
//! └────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The two invariants that make an update crash-atomic:
//!
//! 1. **Never overwrite a live page.** A dirty extent's new payload, the
//!    new extent table, and the new metadata are all *appended* past the
//!    current logical end of file. Until the slot flips, every byte the
//!    live superblock references is untouched — a crash at any append
//!    offset leaves the previous checkpoint fully intact.
//! 2. **Slot flip is the commit point.** After the appended regions are
//!    fsynced, the *other* slot page is written with epoch `e+1` and
//!    fsynced. A reader picks the valid slot with the highest epoch, so
//!    a torn slot write (bad checksum) simply loses the race to the old
//!    slot.
//!
//! Relocated pages leave dead bytes behind; [`CheckpointFile`] accounts
//! them and compacts (a full rewrite through the v1-style temp+fsync+
//! rename dance) once dead exceeds live, so the file stays within 2× of
//! its compact size while updates stay proportional to the dirty set.

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use psi_io::{Disk, ExtentId};

use crate::format::{
    decode_table, encode_table, map_eof, meta_pages, read_paged, write_extent_pages, write_paged,
    ExtPlacement, VolumeDesc, MAGIC, MAX_TAG, META_PAGE, META_PAGE_PAYLOAD,
};
use crate::persist::{build_opened, sweep_stale_tmp, OpenOptions, Opened, PersistIndex};
use crate::sum::fnv1a64;
use crate::StoreError;

/// Format version of checkpoint files (dual-slot superblock). Odd
/// versions are the save-the-world [`crate::format`] layout; the two are
/// told apart by this field, so opening one as the other fails typed.
/// (4 carries the same metadata changes as format version 3: 144-bit
/// skip-directory entries and the slot tail-exactness flag.)
pub const VERSION_CHECKPOINT: u32 = 4;

/// What one checkpoint (create or update) cost.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// Epoch stamped into the committed superblock slot.
    pub epoch: u64,
    /// Logical file size after the checkpoint.
    pub file_bytes: u64,
    /// Bytes physically written by this checkpoint (the incremental
    /// advantage: proportional to the dirty set, not the index).
    pub bytes_written: u64,
    /// Dirty extents flushed.
    pub extents_flushed: usize,
    /// Whether this checkpoint triggered (or was) a full compaction.
    pub compacted: bool,
}

/// The fields of one superblock slot.
#[derive(Debug, Clone)]
struct SlotState {
    volume_count: u32,
    table_off: u64,
    table_len: usize,
    meta_off: u64,
    meta_len: usize,
    file_bytes: u64,
    epoch: u64,
    dead_bytes: u64,
    tag: String,
}

/// Serializes a slot page.
fn encode_slot(state: &SlotState) -> [u8; META_PAGE] {
    let mut sb = [0u8; META_PAGE];
    sb[0..8].copy_from_slice(&MAGIC);
    sb[8..12].copy_from_slice(&VERSION_CHECKPOINT.to_le_bytes());
    sb[12..16].copy_from_slice(&state.volume_count.to_le_bytes());
    sb[16..24].copy_from_slice(&state.table_off.to_le_bytes());
    sb[24..32].copy_from_slice(&(state.table_len as u64).to_le_bytes());
    sb[32..40].copy_from_slice(&state.meta_off.to_le_bytes());
    sb[40..48].copy_from_slice(&(state.meta_len as u64).to_le_bytes());
    sb[48..56].copy_from_slice(&state.file_bytes.to_le_bytes());
    sb[56..64].copy_from_slice(&state.epoch.to_le_bytes());
    sb[64..72].copy_from_slice(&state.dead_bytes.to_le_bytes());
    sb[72..76].copy_from_slice(&(state.tag.len() as u32).to_le_bytes());
    sb[76..76 + state.tag.len()].copy_from_slice(state.tag.as_bytes());
    let sum = fnv1a64(&sb[..META_PAGE_PAYLOAD]);
    sb[META_PAGE_PAYLOAD..].copy_from_slice(&sum.to_le_bytes());
    sb
}

/// Parses one slot page; `None` for anything invalid (wrong magic or
/// version, bad checksum, bad tag) — an invalid slot is simply not a
/// candidate, it is not an error by itself.
fn decode_slot(page: &[u8; META_PAGE]) -> Option<SlotState> {
    if page[0..8] != MAGIC {
        return None;
    }
    if u32::from_le_bytes(page[8..12].try_into().expect("4 bytes")) != VERSION_CHECKPOINT {
        return None;
    }
    let want = u64::from_le_bytes(page[META_PAGE_PAYLOAD..].try_into().expect("8 bytes"));
    if fnv1a64(&page[..META_PAGE_PAYLOAD]) != want {
        return None;
    }
    let tag_len = u32::from_le_bytes(page[72..76].try_into().expect("4 bytes")) as usize;
    if tag_len > MAX_TAG {
        return None;
    }
    let tag = String::from_utf8(page[76..76 + tag_len].to_vec()).ok()?;
    Some(SlotState {
        volume_count: u32::from_le_bytes(page[12..16].try_into().expect("4 bytes")),
        table_off: u64::from_le_bytes(page[16..24].try_into().expect("8 bytes")),
        table_len: u64::from_le_bytes(page[24..32].try_into().expect("8 bytes")) as usize,
        meta_off: u64::from_le_bytes(page[32..40].try_into().expect("8 bytes")),
        meta_len: u64::from_le_bytes(page[40..48].try_into().expect("8 bytes")) as usize,
        file_bytes: u64::from_le_bytes(page[48..56].try_into().expect("8 bytes")),
        epoch: u64::from_le_bytes(page[56..64].try_into().expect("8 bytes")),
        dead_bytes: u64::from_le_bytes(page[64..72].try_into().expect("8 bytes")),
        tag,
    })
}

/// Reads both slots and returns the valid one with the highest epoch,
/// plus its slot number. Fails typed when neither slot is usable.
fn read_slots(file: &mut File) -> Result<(SlotState, u32), StoreError> {
    let mut pages = [[0u8; META_PAGE]; 2];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut pages[0])
        .map_err(|e| map_eof(e, "checkpoint superblock slot A"))?;
    file.read_exact(&mut pages[1])
        .map_err(|e| map_eof(e, "checkpoint superblock slot B"))?;
    let best = [0u32, 1]
        .into_iter()
        .filter_map(|s| decode_slot(&pages[s as usize]).map(|state| (state, s)))
        .max_by_key(|(state, _)| state.epoch);
    match best {
        Some(found) => Ok(found),
        None => {
            // Neither slot decodes: say why, as precisely as possible.
            if pages[0][0..8] != MAGIC {
                return Err(StoreError::BadMagic);
            }
            let version = u32::from_le_bytes(pages[0][8..12].try_into().expect("4 bytes"));
            if version != VERSION_CHECKPOINT {
                return Err(StoreError::BadVersion { found: version });
            }
            Err(StoreError::Corrupt {
                what: "checkpoint superblock slots".into(),
            })
        }
    }
}

/// Wraps checkpoint metadata: a length-prefixed caller blob (the durable
/// write path stores its applied-sequence watermark here) followed by
/// the family's [`crate::MetaBuf`] bytes.
fn wrap_meta(extra: &[u8], meta: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + extra.len() + meta.len());
    out.extend_from_slice(&(extra.len() as u32).to_le_bytes());
    out.extend_from_slice(extra);
    out.extend_from_slice(meta);
    out
}

/// Splits what [`wrap_meta`] joined.
fn split_meta(joined: &[u8]) -> Result<(&[u8], &[u8]), StoreError> {
    if joined.len() < 4 {
        return Err(StoreError::Meta {
            what: "checkpoint extra length".into(),
        });
    }
    let extra_len = u32::from_le_bytes(joined[..4].try_into().expect("4 bytes")) as usize;
    if 4 + extra_len > joined.len() {
        return Err(StoreError::Meta {
            what: format!("checkpoint extra length {extra_len}"),
        });
    }
    Ok((&joined[4..4 + extra_len], &joined[4 + extra_len..]))
}

/// Payload source for one extent during a full (re)write.
enum PayloadSource<'a> {
    /// Resident words, straight from the index's disk.
    Words(&'a [u64]),
    /// Verbatim page copy out of the existing checkpoint file.
    Copy { file_off: u64 },
}

/// A writable checkpoint file: create once, then absorb incremental
/// updates. See the module docs for the commit protocol.
#[derive(Debug)]
pub struct CheckpointFile {
    path: PathBuf,
    file: File,
    tag: String,
    volumes: Vec<VolumeDesc>,
    file_bytes: u64,
    dead_bytes: u64,
    /// Logical byte length of the live (wrapped) metadata region.
    meta_len: usize,
    epoch: u64,
    /// Slot holding the live superblock; the next commit writes the
    /// other one.
    slot: u32,
}

impl CheckpointFile {
    /// Writes a fresh checkpoint of `index` at `path` (temp + fsync +
    /// rename, like a v1 save), stamped with `epoch`. All extents must
    /// be resident. `extra` is the caller's recovery blob, returned
    /// verbatim by [`open_checkpoint`].
    pub fn create<I: PersistIndex>(
        path: impl AsRef<Path>,
        index: &I,
        extra: &[u8],
        epoch: u64,
    ) -> Result<(Self, CheckpointReport), StoreError> {
        assert!(I::TAG.len() <= MAX_TAG, "family tag too long");
        let mut meta = crate::MetaBuf::new();
        index.write_meta(&mut meta);
        let disks = index.disks();
        let mut cp = CheckpointFile {
            path: path.as_ref().to_path_buf(),
            // Placeholder handle; `write_full` (allow_copy = false, so it
            // never reads it) replaces it with the real one.
            file: File::open("/dev/null")?,
            tag: I::TAG.to_string(),
            volumes: Vec::new(),
            file_bytes: 0,
            dead_bytes: 0,
            meta_len: 0,
            epoch,
            slot: 0,
        };
        let report = cp.write_full(&disks, meta.bytes(), extra, epoch, false)?;
        for d in &disks {
            d.clear_dirty();
        }
        Ok((cp, report))
    }

    /// Reattaches to an existing checkpoint file for further updates
    /// (the recovery path: open, replay, keep checkpointing). The dead
    /// tail past the committed logical length — appends from an update
    /// that never reached its slot flip — is truncated away.
    pub fn attach(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        sweep_stale_tmp(path.as_ref());
        let mut file = File::options().read(true).write(true).open(path.as_ref())?;
        let (state, slot) = read_slots(&mut file)?;
        let table = read_paged(&mut file, state.table_off, state.table_len, "extent table")?;
        let volumes = decode_table(&table, state.volume_count)?;
        if file.metadata()?.len() < state.file_bytes {
            return Err(StoreError::Truncated {
                what: "checkpoint payload region".into(),
            });
        }
        file.set_len(state.file_bytes)?;
        Ok(CheckpointFile {
            path: path.as_ref().to_path_buf(),
            file,
            tag: state.tag,
            volumes,
            file_bytes: state.file_bytes,
            dead_bytes: state.dead_bytes,
            meta_len: state.meta_len,
            epoch: state.epoch,
            slot,
        })
    }

    /// Epoch of the live superblock.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Logical file size (the committed append cursor).
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Bytes referenced by no live region (relocated-away pages).
    pub fn dead_bytes(&self) -> u64 {
        self.dead_bytes
    }

    /// Family tag recorded at create time.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// Commits the current state of `index`, writing only dirty extents.
    ///
    /// Appends the dirty extents' pages, a fresh extent table, and fresh
    /// metadata past the logical end; fsyncs; then flips the superblock
    /// slot with epoch `+1` and fsyncs again. Falls back to a full
    /// compacting rewrite when the volume shape changed (a global
    /// rebuild replaced the disks) or when dead bytes exceed live ones.
    pub fn update<I: PersistIndex>(
        &mut self,
        index: &I,
        extra: &[u8],
    ) -> Result<CheckpointReport, StoreError> {
        let mut meta = crate::MetaBuf::new();
        index.write_meta(&mut meta);
        let disks = index.disks();
        if self.tag != I::TAG {
            return Err(StoreError::WrongFamily {
                expected: self.tag.clone(),
                found: I::TAG.into(),
            });
        }
        let shape_ok = disks.len() == self.volumes.len()
            && disks
                .iter()
                .zip(&self.volumes)
                .all(|(d, v)| *d.config() == v.config);
        if !shape_ok {
            let epoch = self.epoch + 1;
            let report = self.write_full(&disks, meta.bytes(), extra, epoch, true)?;
            for d in &disks {
                d.clear_dirty();
            }
            return Ok(report);
        }

        // Plan: keep clean placements, relocate dirty extents to appends.
        let mut cursor = self.file_bytes;
        let mut dead = self.dead_bytes;
        let mut flush: Vec<(usize, ExtentId)> = Vec::new();
        let mut new_volumes = Vec::with_capacity(disks.len());
        for (v, disk) in disks.iter().enumerate() {
            let page_bytes = disk.block_bits() / 8 + 8;
            let old = &self.volumes[v];
            // Stale placements past the disk's extent range (a shrink
            // can only come from replacing the disk, which relocates
            // everything) become dead.
            for p in old.extents.iter().skip(disk.num_extents()) {
                if p.file_off != u64::MAX {
                    dead += disk.config().blocks_for_bits(p.bit_len) * page_bytes;
                }
            }
            let mut extents = Vec::with_capacity(disk.num_extents());
            for i in 0..disk.num_extents() {
                let ext = ExtentId(i as u32);
                let old_place = old.extents.get(i).copied();
                if !disk.is_dirty(ext) {
                    if let Some(p) = old_place {
                        extents.push(p);
                        continue;
                    }
                }
                if !disk.is_resident(ext) {
                    return Err(StoreError::NotResident);
                }
                if let Some(p) = old_place {
                    if p.file_off != u64::MAX {
                        dead += disk.config().blocks_for_bits(p.bit_len) * page_bytes;
                    }
                }
                let bit_len = disk.extent_bits(ext);
                let blocks = disk.config().blocks_for_bits(bit_len);
                let file_off = if blocks == 0 { u64::MAX } else { cursor };
                cursor += blocks * page_bytes;
                extents.push(ExtPlacement {
                    bit_len,
                    freed: disk.is_freed(ext),
                    file_off,
                });
                if blocks > 0 {
                    flush.push((v, ext));
                }
            }
            new_volumes.push(VolumeDesc {
                config: *disk.config(),
                extents,
            });
        }
        let extents_flushed = flush.len();

        // Appended regions: payload, then table, then metadata.
        let table = encode_table(&new_volumes);
        let joined = wrap_meta(extra, meta.bytes());
        let table_off = cursor;
        let table_pages = meta_pages(table.len()) * META_PAGE as u64;
        let meta_off = table_off + table_pages;
        let meta_pages_bytes = meta_pages(joined.len()) * META_PAGE as u64;
        let new_file_bytes = meta_off + meta_pages_bytes;
        // The regions the old slot referenced are now garbage.
        dead += meta_pages(self_table_len(&self.volumes)) * META_PAGE as u64;
        dead += self.live_meta_pages_bytes();

        self.file.seek(SeekFrom::Start(self.file_bytes))?;
        {
            let mut out = BufWriter::new(&self.file);
            for &(v, ext) in &flush {
                let disk = &disks[v];
                let blocks = disk.config().blocks_for_bits(disk.extent_bits(ext));
                write_extent_pages(&mut out, disk.extent_words(ext), blocks, disk.block_bits())?;
            }
            write_paged(&mut out, &table)?;
            write_paged(&mut out, &joined)?;
            out.flush()?;
        }
        self.file.sync_all()?;

        // Commit: flip to the other slot with the next epoch.
        let epoch = self.epoch + 1;
        let state = SlotState {
            volume_count: disks.len() as u32,
            table_off,
            table_len: table.len(),
            meta_off,
            meta_len: joined.len(),
            file_bytes: new_file_bytes,
            epoch,
            dead_bytes: dead,
            tag: self.tag.clone(),
        };
        let slot = 1 - self.slot;
        self.file
            .seek(SeekFrom::Start(u64::from(slot) * META_PAGE as u64))?;
        self.file.write_all(&encode_slot(&state))?;
        self.file.sync_all()?;

        let bytes_written = (new_file_bytes - self.file_bytes) + META_PAGE as u64;
        self.volumes = new_volumes;
        self.meta_len = joined.len();
        self.file_bytes = new_file_bytes;
        self.dead_bytes = dead;
        self.epoch = epoch;
        self.slot = slot;
        for d in &disks {
            d.clear_dirty();
        }

        // Compact once relocation garbage outweighs live data.
        if self.dead_bytes > self.live_bytes() {
            let epoch = self.epoch + 1;
            let mut report = self.write_full(&disks, meta.bytes(), extra, epoch, true)?;
            report.bytes_written += bytes_written;
            report.extents_flushed = extents_flushed;
            return Ok(report);
        }
        Ok(CheckpointReport {
            epoch,
            file_bytes: new_file_bytes,
            bytes_written,
            extents_flushed,
            compacted: false,
        })
    }

    /// Live bytes the current slot references (slots + table + meta +
    /// placed payload).
    fn live_bytes(&self) -> u64 {
        let mut live = 2 * META_PAGE as u64;
        live += meta_pages(self_table_len(&self.volumes)) * META_PAGE as u64;
        live += self.live_meta_pages_bytes();
        for v in &self.volumes {
            let page_bytes = v.page_bytes();
            for e in &v.extents {
                if e.file_off != u64::MAX {
                    live += v.config.blocks_for_bits(e.bit_len) * page_bytes;
                }
            }
        }
        live
    }

    fn live_meta_pages_bytes(&self) -> u64 {
        meta_pages(self.meta_len) * META_PAGE as u64
    }

    /// Full rewrite: every extent's payload (resident words, or a
    /// verbatim page copy from the current file when `allow_copy`),
    /// fresh table and metadata, a single live slot — all through the
    /// temp + fsync + rename dance, so either the old or the new
    /// checkpoint survives a crash, never a mixture.
    fn write_full(
        &mut self,
        disks: &[&Disk],
        meta: &[u8],
        extra: &[u8],
        epoch: u64,
        allow_copy: bool,
    ) -> Result<CheckpointReport, StoreError> {
        let joined = wrap_meta(extra, meta);
        // Plan placements and payload sources.
        let shape_ok = allow_copy
            && disks.len() == self.volumes.len()
            && disks
                .iter()
                .zip(&self.volumes)
                .all(|(d, v)| *d.config() == v.config);
        let mut sources: Vec<PayloadSource<'_>> = Vec::new();
        let mut new_volumes = Vec::with_capacity(disks.len());
        // Regions: slots, table, meta, payload.
        let table_len_probe = {
            // Probe with zero offsets: the table length is placement-
            // independent (17 bytes per extent, fixed header per volume).
            let probe: Vec<VolumeDesc> = disks
                .iter()
                .map(|d| VolumeDesc {
                    config: *d.config(),
                    extents: (0..d.num_extents())
                        .map(|_| ExtPlacement {
                            bit_len: 0,
                            freed: false,
                            file_off: 0,
                        })
                        .collect(),
                })
                .collect();
            encode_table(&probe).len()
        };
        let table_off = 2 * META_PAGE as u64;
        let meta_off = table_off + meta_pages(table_len_probe) * META_PAGE as u64;
        let mut cursor = meta_off + meta_pages(joined.len()) * META_PAGE as u64;
        for (v, disk) in disks.iter().enumerate() {
            let page_bytes = disk.block_bits() / 8 + 8;
            let mut extents = Vec::with_capacity(disk.num_extents());
            for i in 0..disk.num_extents() {
                let ext = ExtentId(i as u32);
                let bit_len = disk.extent_bits(ext);
                let blocks = disk.config().blocks_for_bits(bit_len);
                let file_off = if blocks == 0 { u64::MAX } else { cursor };
                cursor += blocks * page_bytes;
                extents.push(ExtPlacement {
                    bit_len,
                    freed: disk.is_freed(ext),
                    file_off,
                });
                if blocks == 0 {
                    continue;
                }
                if disk.is_resident(ext) {
                    sources.push(PayloadSource::Words(disk.extent_words(ext)));
                } else {
                    let old = if shape_ok {
                        self.volumes[v].extents.get(i).copied()
                    } else {
                        None
                    };
                    match old {
                        Some(p) if p.file_off != u64::MAX && p.bit_len == bit_len => {
                            sources.push(PayloadSource::Copy {
                                file_off: p.file_off,
                            });
                        }
                        _ => return Err(StoreError::NotResident),
                    }
                }
            }
            new_volumes.push(VolumeDesc {
                config: *disk.config(),
                extents,
            });
        }
        let file_bytes = cursor;
        let table = encode_table(&new_volumes);
        debug_assert_eq!(table.len(), table_len_probe);

        let state = SlotState {
            volume_count: disks.len() as u32,
            table_off,
            table_len: table.len(),
            meta_off,
            meta_len: joined.len(),
            file_bytes,
            epoch,
            dead_bytes: 0,
            tag: self.tag.clone(),
        };

        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        {
            let mut out = BufWriter::new(&file);
            out.write_all(&encode_slot(&state))?;
            // The alternate slot starts invalid (all zeroes).
            out.write_all(&[0u8; META_PAGE])?;
            write_paged(&mut out, &table)?;
            write_paged(&mut out, &joined)?;
            let mut src = sources.into_iter();
            let mut page_buf = Vec::new();
            for disk in disks {
                let page_bytes = (disk.block_bits() / 8 + 8) as usize;
                for i in 0..disk.num_extents() {
                    let ext = ExtentId(i as u32);
                    let blocks = disk.config().blocks_for_bits(disk.extent_bits(ext));
                    if blocks == 0 {
                        continue;
                    }
                    match src.next().expect("one source per placed extent") {
                        PayloadSource::Words(words) => {
                            write_extent_pages(&mut out, words, blocks, disk.block_bits())?;
                        }
                        PayloadSource::Copy { file_off } => {
                            page_buf.resize(page_bytes * blocks as usize, 0);
                            self.file.seek(SeekFrom::Start(file_off))?;
                            self.file
                                .read_exact(&mut page_buf)
                                .map_err(|e| map_eof(e, "checkpoint payload copy"))?;
                            out.write_all(&page_buf)?;
                        }
                    }
                }
            }
            out.flush()?;
        }
        file.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        // Make the rename itself durable.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        self.file = file;
        self.volumes = new_volumes;
        self.meta_len = joined.len();
        self.file_bytes = file_bytes;
        self.dead_bytes = 0;
        self.epoch = epoch;
        self.slot = 0;
        Ok(CheckpointReport {
            epoch,
            file_bytes,
            bytes_written: file_bytes,
            extents_flushed: self.volumes.iter().map(|v| v.extents.len()).sum(),
            compacted: true,
        })
    }
}

/// Byte length of the encoded table for `volumes` (17 bytes per extent
/// plus a fixed per-volume header; placement-independent).
fn self_table_len(volumes: &[VolumeDesc]) -> usize {
    encode_table(volumes).len()
}

/// Opens a checkpoint file read-only as index family `I`, returning the
/// reconstructed index (payload lazily fetched, exactly like
/// [`crate::open`]) plus the caller's `extra` recovery blob.
pub fn open_checkpoint<I: PersistIndex>(
    path: impl AsRef<Path>,
    opts: &OpenOptions,
) -> Result<(Opened<I>, Vec<u8>), StoreError> {
    if opts.pool_blocks == 0 {
        return Err(StoreError::InvalidOptions {
            what: "pool_blocks must be at least 1".into(),
        });
    }
    sweep_stale_tmp(path.as_ref());
    let mut file = File::open(path.as_ref())?;
    let (state, _slot) = read_slots(&mut file)?;
    if state.tag != I::TAG {
        return Err(StoreError::WrongFamily {
            expected: I::TAG.into(),
            found: state.tag,
        });
    }
    let table = read_paged(&mut file, state.table_off, state.table_len, "extent table")?;
    let volumes = decode_table(&table, state.volume_count)?;
    let joined = read_paged(&mut file, state.meta_off, state.meta_len, "index metadata")?;
    let (extra, meta) = split_meta(&joined)?;
    let actual = file.metadata()?.len();
    if actual < state.file_bytes {
        return Err(StoreError::Truncated {
            what: format!(
                "checkpoint payload region ({actual} of {} bytes)",
                state.file_bytes
            ),
        });
    }
    let opened = build_opened(file, &volumes, meta, state.file_bytes, opts, None)?;
    Ok((opened, extra.to_vec()))
}

/// Reads just the committed epoch of a checkpoint file (the recovery
/// path decides which log tail to replay from this).
pub fn checkpoint_epoch(path: impl AsRef<Path>) -> Result<u64, StoreError> {
    let mut file = File::open(path.as_ref())?;
    let (state, _) = read_slots(&mut file)?;
    Ok(state.epoch)
}

/// Reads the epoch of **every** valid superblock slot (0, 1 or 2
/// entries, newest first, deduplicated).
///
/// [`checkpoint_epoch`] answers "which checkpoint wins today" — but a
/// slot flip is only durable once its page survives a crash, and a torn
/// write tears it *after* the flipping process has moved on. Anything
/// that garbage-collects state referenced by the superblock (the durable
/// write path's stale-log sweep) must therefore treat every epoch still
/// present in a decodable slot as live: if the newest slot later reads
/// back torn, recovery falls back to the other slot and replays *its*
/// log.
pub fn checkpoint_slot_epochs(path: impl AsRef<Path>) -> Result<Vec<u64>, StoreError> {
    let mut file = File::open(path.as_ref())?;
    let mut pages = [[0u8; META_PAGE]; 2];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut pages[0])
        .map_err(|e| map_eof(e, "checkpoint superblock slot A"))?;
    file.read_exact(&mut pages[1])
        .map_err(|e| map_eof(e, "checkpoint superblock slot B"))?;
    let mut epochs: Vec<u64> = pages
        .iter()
        .filter_map(decode_slot)
        .map(|s| s.epoch)
        .collect();
    epochs.sort_unstable_by(|a, b| b.cmp(a));
    epochs.dedup();
    Ok(epochs)
}
