//! Save/open entry points and the [`PersistIndex`] trait every index
//! family implements.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use psi_io::{BlockStore, BufferPool, Disk, PoolStats, StoredExtent};

use crate::format::{read_header, write_store};
use crate::raw::{RawBytes, RawFile, RawMmap};
use crate::ser::{MetaBuf, MetaCursor};
use crate::volume::VolumeStore;
use crate::StoreError;

/// Which real-read backend an opened store fetches payload through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Positioned `pread`s on the file descriptor.
    File,
    /// A read-only mmap of the whole file.
    Mmap,
}

/// Options for [`open`].
#[derive(Debug, Clone, Copy)]
pub struct OpenOptions {
    /// Payload backend.
    pub backend: Backend,
    /// Buffer-pool capacity in model blocks, per volume.
    pub pool_blocks: usize,
    /// When set, every payload fetch retries transient OS failures under
    /// this policy before surfacing; permanent and corrupt failures
    /// (missing extent, checksum mismatch) surface immediately either way.
    pub retry: Option<psi_io::RetryPolicy>,
    /// Verified fetches: when `true` (the default) every payload page is
    /// checked against its FNV-1a trailer as the buffer pool faults it
    /// in — never on warm hits — and a mismatch surfaces as
    /// [`psi_io::ErrorClass::Corrupt`]. Turning it off skips the
    /// checksum on fetch (the E17 overhead ablation; open-time
    /// validation of superblock/meta pages still happens).
    pub verify: bool,
}

impl Default for OpenOptions {
    fn default() -> Self {
        OpenOptions {
            backend: Backend::File,
            pool_blocks: 1024,
            retry: None,
            verify: true,
        }
    }
}

/// An index family that can round-trip through a store file.
///
/// The contract: `from_parts(write_meta(i), disks(i))` answers every
/// query — `query`, `cardinality_hint`, conjunctive plans — identically
/// to `i`, with identical [`psi_io::IoStats`] charges. Payload lives in
/// the disks (saved verbatim, block by block); everything else the index
/// holds in memory goes through the metadata buffer.
pub trait PersistIndex: Sized {
    /// Family tag recorded in the superblock (checked at open).
    const TAG: &'static str;

    /// Serializes the memory-resident state.
    fn write_meta(&self, out: &mut MetaBuf);

    /// The disks holding payload, in a fixed order (`from_parts` receives
    /// reopened disks in the same order).
    fn disks(&self) -> Vec<&Disk>;

    /// Reconstructs the index from decoded metadata plus reopened disks.
    fn from_parts(meta: &mut MetaCursor, disks: Vec<Disk>) -> Result<Self, StoreError>;
}

/// Pops the single volume a one-disk family expects from an opened
/// store's disks (the shared [`PersistIndex::from_parts`] prologue of
/// every single-volume family).
pub fn single_volume(mut disks: Vec<Disk>, family: &str) -> Result<Disk, StoreError> {
    match (disks.pop(), disks.is_empty()) {
        (Some(d), true) => Ok(d),
        _ => Err(StoreError::Meta {
            what: format!("{family} index expects exactly one volume"),
        }),
    }
}

/// Validates a serialized extent id against a reopened disk's extent
/// table (the shared bounds check of every `from_parts`
/// implementation).
pub fn check_extent(disk: &Disk, id: u32, what: &str) -> Result<psi_io::ExtentId, StoreError> {
    if id as usize >= disk.num_extents() {
        return Err(StoreError::Meta {
            what: format!("{what} extent {id} out of range"),
        });
    }
    Ok(psi_io::ExtentId(id))
}

/// Statistics returned by [`save`].
#[derive(Debug, Clone, Copy)]
pub struct SaveReport {
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Number of volumes written.
    pub volumes: usize,
}

/// Saves an index to `path`.
///
/// All extents must be resident (true for every built index; an opened,
/// file-backed index must promote its disks first) — otherwise
/// [`StoreError::NotResident`].
pub fn save<I: PersistIndex>(index: &I, path: impl AsRef<Path>) -> Result<SaveReport, StoreError> {
    let mut meta = MetaBuf::new();
    index.write_meta(&mut meta);
    let disks = index.disks();
    let file_bytes = write_store(path.as_ref(), I::TAG, meta.bytes(), &disks)?;
    Ok(SaveReport {
        file_bytes,
        volumes: disks.len(),
    })
}

/// An opened index plus handles onto its real-read machinery.
///
/// `Opened<I>` is `Send + Sync` whenever `I` is (every persisted family
/// is): put it behind an `Arc` and query it from as many threads as you
/// like — each thread brings its own per-query [`psi_io::IoSession`],
/// the sharded per-volume buffer pools handle the rest.
#[derive(Debug)]
pub struct Opened<I> {
    /// The reconstructed index.
    pub index: I,
    /// Total file size in bytes.
    pub file_bytes: u64,
    fetches: Arc<AtomicU64>,
    pools: Vec<Arc<BufferPool>>,
}

impl<I> Opened<I> {
    /// Real payload blocks fetched since open, across all volumes —
    /// the number the cold-cache validation compares against the
    /// simulated [`psi_io::IoStats`] charge.
    pub fn real_fetches(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// Summed buffer-pool counters across volumes (hits, misses,
    /// evictions, and pinned-growth events past the capacity target).
    pub fn pool_stats(&self) -> PoolStats {
        self.pools
            .iter()
            .fold(PoolStats::default(), |acc, p| acc.merged(&p.stats()))
    }
}

/// Removes the stale `<path>.tmp` sibling an interrupted atomic save
/// leaves behind (the process died between temp-file create and rename).
/// The temp file is garbage by construction — the rename never happened,
/// so `path` still holds the previous complete store — and sweeping it
/// on open keeps dead multi-gigabyte files from accumulating.
pub fn sweep_stale_tmp(path: &Path) {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    // Best effort: a racing sweep or permission problem must not turn a
    // readable store into an open error.
    let _ = std::fs::remove_file(std::path::PathBuf::from(tmp));
}

/// Opens the store at `path` as index family `I`.
///
/// The superblock, extent table and metadata region are read and
/// verified now; payload pages are fetched lazily, one model block at a
/// time, through a per-volume pinning buffer pool of
/// `opts.pool_blocks` frames.
pub fn open<I: PersistIndex>(
    path: impl AsRef<Path>,
    opts: &OpenOptions,
) -> Result<Opened<I>, StoreError> {
    open_with_wrap(path, opts, None)
}

/// Per-volume store wrapper: receives each volume's fetch chain (the
/// [`VolumeStore`], before any retry wrapper) plus the volume index and
/// returns the store the buffer pool should fetch through. Fault
/// injection hooks in here — tests wrap real file volumes in
/// [`psi_io::FaultyStore`] to script failures against the production
/// open path.
pub type StoreWrap<'a> = &'a dyn Fn(Arc<dyn BlockStore>, usize) -> Arc<dyn BlockStore>;

/// [`open`] with a per-volume store wrapper interposed between the
/// volume reader and the retry/pool layers (testing and fault drills).
pub fn open_with_wrap<I: PersistIndex>(
    path: impl AsRef<Path>,
    opts: &OpenOptions,
    wrap: Option<StoreWrap<'_>>,
) -> Result<Opened<I>, StoreError> {
    if opts.pool_blocks == 0 {
        return Err(StoreError::InvalidOptions {
            what: "pool_blocks must be at least 1".into(),
        });
    }
    sweep_stale_tmp(path.as_ref());
    let (file, header) = read_header(path.as_ref())?;
    if header.tag != I::TAG {
        return Err(StoreError::WrongFamily {
            expected: I::TAG.into(),
            found: header.tag,
        });
    }
    build_opened(
        file,
        &header.volumes,
        &header.meta,
        header.file_bytes,
        opts,
        wrap,
    )
}

/// Builds an [`Opened`] index from an already-validated header: wires a
/// [`VolumeStore`] (optionally wrapped, optionally retry-wrapped) and
/// buffer pool per volume, reconstructs the disks non-resident, and
/// decodes the family metadata. Shared by [`open`] and the checkpoint
/// open path.
pub(crate) fn build_opened<I: PersistIndex>(
    file: std::fs::File,
    volumes: &[crate::format::VolumeDesc],
    meta: &[u8],
    file_bytes: u64,
    opts: &OpenOptions,
    wrap: Option<StoreWrap<'_>>,
) -> Result<Opened<I>, StoreError> {
    let raw: Arc<dyn RawBytes> = match opts.backend {
        Backend::File => Arc::new(RawFile::new(file)),
        Backend::Mmap => Arc::new(RawMmap::new(&file)?),
    };
    let fetches = Arc::new(AtomicU64::new(0));
    let mut disks = Vec::with_capacity(volumes.len());
    let mut pools = Vec::with_capacity(volumes.len());
    for (v, desc) in volumes.iter().enumerate() {
        let stored: Vec<StoredExtent> = desc
            .extents
            .iter()
            .map(|e| StoredExtent {
                bit_len: e.bit_len,
                freed: e.freed,
            })
            .collect();
        let volume: Arc<dyn BlockStore> = Arc::new(VolumeStore::new(
            Arc::clone(&raw),
            Arc::clone(&fetches),
            desc.clone(),
            v,
        ));
        let volume = match wrap {
            Some(w) => w(volume, v),
            None => volume,
        };
        let store: Arc<dyn BlockStore> = match opts.retry {
            Some(policy) => Arc::new(psi_io::RetryStore::new(volume, policy)),
            None => volume,
        };
        let pool = Arc::new(BufferPool::new(
            store,
            opts.pool_blocks,
            desc.config.block_bits,
        ));
        pool.set_verify(opts.verify);
        disks.push(Disk::from_stored(desc.config, &stored, Arc::clone(&pool)));
        pools.push(pool);
    }
    let mut cursor = MetaCursor::new(meta);
    let index = I::from_parts(&mut cursor, disks)?;
    Ok(Opened {
        index,
        file_bytes,
        fetches,
        pools,
    })
}
