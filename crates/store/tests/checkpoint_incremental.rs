//! The v2 checkpoint file: incremental updates, crash atomicity of the
//! slot flip, dead-byte compaction, and typed cross-version errors.

use psi_io::{Disk, ExtentId, IoConfig, IoSession};
use psi_store::format::META_PAGE;
use psi_store::{
    checkpoint_epoch, open_checkpoint, CheckpointFile, MetaBuf, MetaCursor, OpenOptions,
    PersistIndex, StoreError,
};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("psi_store_checkpoint");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// Minimal single-volume family for exercising the checkpoint machinery
/// below the real index families.
struct Probe {
    disk: Disk,
    generation: u64,
}

impl PersistIndex for Probe {
    const TAG: &'static str = "ckpt_probe";

    fn write_meta(&self, out: &mut MetaBuf) {
        out.put_u64(self.generation);
    }

    fn disks(&self) -> Vec<&Disk> {
        vec![&self.disk]
    }

    fn from_parts(meta: &mut MetaCursor, disks: Vec<Disk>) -> Result<Self, StoreError> {
        let generation = meta.get_u64()?;
        let disk = psi_store::single_volume(disks, "probe")?;
        Ok(Probe { disk, generation })
    }
}

fn build_probe_sized(extents: usize, writes: usize) -> Probe {
    let mut disk = Disk::new(IoConfig::with_block_bits(256));
    let io = IoSession::untracked();
    for i in 0..extents {
        let ext = disk.alloc();
        let mut w = disk.writer(ext, &io);
        for j in 0..writes {
            w.write_bits((i as u64) << 32 | j as u64, 48);
        }
    }
    Probe {
        disk,
        generation: 0,
    }
}

fn build_probe(extents: usize) -> Probe {
    build_probe_sized(extents, 40)
}

/// Replaces extent `i`'s payload in place (`writer` appends, so the
/// extent is truncated first — otherwise every "rewrite" would grow it).
fn rewrite_extent(p: &mut Probe, i: usize, salt: u64) {
    let io = IoSession::untracked();
    let ext = ExtentId(i as u32);
    p.disk.truncate(ext, 0);
    let mut w = p.disk.writer(ext, &io);
    for j in 0..40 {
        w.write_bits((salt ^ ((i as u64) << 32 | j)) & 0xFFFF_FFFF_FFFF, 48);
    }
}

fn words_of(p: &Probe) -> Vec<Vec<u64>> {
    (0..p.disk.num_extents())
        .map(|i| p.disk.extent_words(ExtentId(i as u32)).to_vec())
        .collect()
}

fn reopen(path: &std::path::Path) -> (Probe, Vec<u8>) {
    let (opened, extra) =
        open_checkpoint::<Probe>(path, &OpenOptions::default()).expect("open checkpoint");
    let mut probe = opened.index;
    probe.disk.promote_all();
    (probe, extra)
}

#[test]
fn create_open_roundtrip_carries_extra() {
    let path = tmp("roundtrip.ck");
    let mut probe = build_probe(5);
    probe.generation = 41;
    let (cp, report) = CheckpointFile::create(&path, &probe, b"wal-seq=7", 1).expect("create");
    assert_eq!(report.epoch, 1);
    assert!(report.compacted);
    assert_eq!(cp.epoch(), 1);
    assert_eq!(checkpoint_epoch(&path).expect("epoch"), 1);
    let (reopened, extra) = reopen(&path);
    assert_eq!(extra, b"wal-seq=7");
    assert_eq!(reopened.generation, 41);
    assert_eq!(words_of(&reopened), words_of(&probe));
}

#[test]
fn incremental_update_writes_only_the_dirty_set() {
    let path = tmp("incremental.ck");
    // Payload-dominant extents, so the fixed page overhead of an update
    // (table + metadata + slot) does not drown the comparison.
    let mut probe = build_probe_sized(64, 2000);
    let (mut cp, full) = CheckpointFile::create(&path, &probe, &[], 1).expect("create");
    assert!(probe.disk.dirty_extents().is_empty(), "create clears dirty");

    // Touch 2 of 64 extents: the update must write far less than a full
    // save (2 extents + table + meta + slot vs the whole payload).
    rewrite_extent(&mut probe, 3, 0xA5A5);
    rewrite_extent(&mut probe, 40, 0x5A5A);
    assert_eq!(probe.disk.dirty_extents().len(), 2);
    let report = cp.update(&probe, b"seq=2").expect("update");
    assert_eq!(report.epoch, 2);
    assert_eq!(report.extents_flushed, 2);
    assert!(!report.compacted);
    assert!(
        report.bytes_written * 4 < full.bytes_written,
        "incremental wrote {} of a {}-byte full save",
        report.bytes_written,
        full.bytes_written
    );
    assert!(probe.disk.dirty_extents().is_empty(), "update clears dirty");

    let (reopened, extra) = reopen(&path);
    assert_eq!(extra, b"seq=2");
    assert_eq!(words_of(&reopened), words_of(&probe));
}

#[test]
fn torn_slot_flip_falls_back_to_previous_epoch() {
    let path = tmp("torn_slot.ck");
    let mut probe = build_probe(8);
    let (mut cp, _) = CheckpointFile::create(&path, &probe, b"e1", 1).expect("create");
    let before = words_of(&probe);
    rewrite_extent(&mut probe, 2, 0xDEAD);
    cp.update(&probe, b"e2").expect("update");
    drop(cp);

    // Epoch 2 committed into slot B (page 1). Corrupt that slot: the
    // reader must fall back to epoch 1 — the pre-update image — intact.
    let mut bytes = std::fs::read(&path).expect("read");
    bytes[META_PAGE + 100] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("rewrite");
    assert_eq!(checkpoint_epoch(&path).expect("epoch"), 1);
    let (reopened, extra) = reopen(&path);
    assert_eq!(extra, b"e1");
    assert_eq!(words_of(&reopened), before);

    // Attach resumes from the surviving epoch and can commit again.
    let mut cp = CheckpointFile::attach(&path).expect("attach");
    assert_eq!(cp.epoch(), 1);
    probe.disk.mark_dirty(ExtentId(2));
    cp.update(&probe, b"e2-again").expect("re-update");
    let (reopened, extra) = reopen(&path);
    assert_eq!(extra, b"e2-again");
    assert_eq!(words_of(&reopened), words_of(&probe));
}

#[test]
fn both_slots_corrupt_is_typed() {
    let path = tmp("dead_slots.ck");
    let probe = build_probe(2);
    CheckpointFile::create(&path, &probe, &[], 1).expect("create");
    let mut bytes = std::fs::read(&path).expect("read");
    bytes[40] ^= 0x01; // slot A body (checksum now wrong)
    std::fs::write(&path, &bytes).expect("rewrite");
    // Slot B was never written (all zeroes), so nothing valid remains.
    assert!(matches!(
        checkpoint_epoch(&path),
        Err(StoreError::Corrupt { .. })
    ));
}

#[test]
fn repeated_updates_trigger_compaction_and_bound_file_size() {
    let path = tmp("compact.ck");
    let mut probe = build_probe(16);
    let (mut cp, create) = CheckpointFile::create(&path, &probe, &[], 1).expect("create");
    let compact_bytes = create.file_bytes;
    let mut compacted = 0;
    for round in 0..200u64 {
        rewrite_extent(
            &mut probe,
            (round % 16) as usize,
            round.wrapping_mul(0x9E37),
        );
        let report = cp.update(&probe, &round.to_le_bytes()).expect("update");
        if report.compacted {
            compacted += 1;
        }
        // Never-overwrite-live relocation grows the file, compaction
        // shrinks it back: the physical size stays within a small factor
        // of the compact size.
        assert!(
            cp.file_bytes() <= compact_bytes * 3,
            "file grew unbounded: {} vs compact {compact_bytes}",
            cp.file_bytes()
        );
    }
    assert!(compacted > 0, "200 relocating updates never compacted");
    assert!(cp.epoch() >= 200);
    let (reopened, _) = reopen(&path);
    assert_eq!(words_of(&reopened), words_of(&probe));
}

#[test]
fn volume_shape_change_falls_back_to_full_rewrite() {
    let path = tmp("reshape.ck");
    let probe = build_probe(4);
    let (mut cp, _) = CheckpointFile::create(&path, &probe, &[], 1).expect("create");
    // A rebuilt index arrives with a differently-configured disk: the
    // update must survive as a full rewrite, not an incremental commit.
    let mut disk = Disk::new(IoConfig::with_block_bits(512));
    let io = IoSession::untracked();
    for i in 0..9 {
        let ext = disk.alloc();
        let mut w = disk.writer(ext, &io);
        for j in 0..40 {
            w.write_bits((i as u64) << 32 | j, 48);
        }
    }
    let probe2 = Probe {
        disk,
        generation: 1,
    };
    let report = cp.update(&probe2, b"rebuilt").expect("update");
    assert!(report.compacted);
    let (reopened, extra) = reopen(&path);
    assert_eq!(extra, b"rebuilt");
    assert_eq!(words_of(&reopened), words_of(&probe2));
}

#[test]
fn version_mismatch_is_typed_both_ways() {
    // A plain save opened as a checkpoint reports its version, and a
    // checkpoint opened through the plain path reports the checkpoint
    // version.
    let v1 = tmp("v1.psi");
    let probe = build_probe(2);
    psi_store::save(&probe, &v1).expect("save v1");
    assert!(matches!(
        checkpoint_epoch(&v1),
        Err(StoreError::BadVersion {
            found: psi_store::VERSION
        })
    ));
    assert!(matches!(
        open_checkpoint::<Probe>(&v1, &OpenOptions::default()),
        Err(StoreError::BadVersion {
            found: psi_store::VERSION
        })
    ));

    let v2 = tmp("v2.ck");
    CheckpointFile::create(&v2, &probe, &[], 1).expect("create");
    assert!(matches!(
        psi_store::open::<Probe>(&v2, &OpenOptions::default()),
        Err(StoreError::BadVersion {
            found: psi_store::VERSION_CHECKPOINT
        })
    ));
}

#[test]
fn wrong_family_is_typed_at_checkpoint_open() {
    struct Other;
    impl PersistIndex for Other {
        const TAG: &'static str = "other_family";
        fn write_meta(&self, _out: &mut MetaBuf) {}
        fn disks(&self) -> Vec<&Disk> {
            Vec::new()
        }
        fn from_parts(_meta: &mut MetaCursor, _disks: Vec<Disk>) -> Result<Self, StoreError> {
            Ok(Other)
        }
    }
    let path = tmp("family.ck");
    let probe = build_probe(2);
    CheckpointFile::create(&path, &probe, &[], 1).expect("create");
    assert!(matches!(
        open_checkpoint::<Other>(&path, &OpenOptions::default()),
        Err(StoreError::WrongFamily { .. })
    ));
}

#[test]
fn stale_tmp_sibling_is_swept_on_open_and_attach() {
    let path = tmp("sweep.ck");
    let probe = build_probe(2);
    CheckpointFile::create(&path, &probe, &[], 1).expect("create");
    let tmp_sibling = {
        let mut s = path.as_os_str().to_owned();
        s.push(".tmp");
        std::path::PathBuf::from(s)
    };
    // An interrupted compaction leaves a half-written temp sibling; both
    // open paths must remove it and still open the real file.
    std::fs::write(&tmp_sibling, b"half-written compaction junk").expect("plant tmp");
    reopen(&path);
    assert!(!tmp_sibling.exists(), "open_checkpoint swept the sibling");
    std::fs::write(&tmp_sibling, b"junk again").expect("plant tmp");
    CheckpointFile::attach(&path).expect("attach");
    assert!(!tmp_sibling.exists(), "attach swept the sibling");
}
