//! Robustness of the on-disk format: random superblock + extent-table
//! round-trips, and typed (never panicking) errors for corrupt or
//! truncated files.
//!
//! These tests exercise `psi-store` below the index families: they write
//! files from hand-built disks, then bit-flip and truncate them and
//! assert every open path reports a [`StoreError`] variant.

use proptest::prelude::*;
use psi_io::{Disk, IoConfig, IoSession};
use psi_store::format::{read_header, write_store, META_PAGE};
use psi_store::StoreError;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("psi_store_robustness");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Builds a disk with the given extent bit-lengths (filled with a
/// deterministic pattern) and the given freed markers.
fn build_disk(block_bits: u64, extents: &[(u64, bool)]) -> Disk {
    let mut disk = Disk::new(IoConfig::with_block_bits(block_bits));
    let io = IoSession::untracked();
    for (i, &(bits, freed)) in extents.iter().enumerate() {
        let ext = disk.alloc();
        let mut w = disk.writer(ext, &io);
        let mut remaining = bits;
        let mut x = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1);
        while remaining > 0 {
            let k = remaining.min(64) as u32;
            x = x.rotate_left(7) ^ remaining;
            w.write_bits(if k == 64 { x } else { x & ((1 << k) - 1) }, k);
            remaining -= u64::from(k);
        }
        if freed {
            disk.free(ext);
        }
    }
    disk
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Superblock + extent table survive a write/read round-trip for
    // random extent layouts, block sizes and freed patterns.
    #[test]
    fn superblock_and_extent_table_roundtrip(
        shift in 0u32..4,
        raw_lens in proptest::collection::vec((0u64..5000, 0u64..2), 0..12),
        meta_len in 0usize..9000,
    ) {
        let block_bits = 128u64 << shift;
        let lens: Vec<(u64, bool)> = raw_lens.iter().map(|&(b, f)| (b, f == 1)).collect();
        let disk = build_disk(block_bits, &lens);
        let meta: Vec<u8> = (0..meta_len).map(|i| (i * 31 % 251) as u8).collect();
        let path = tmp("roundtrip.psi");
        let file_bytes = write_store(&path, "prop", &meta, &[&disk]).expect("write");
        prop_assert_eq!(std::fs::metadata(&path).expect("stat").len(), file_bytes);
        let (_file, header) = read_header(&path).expect("read");
        prop_assert_eq!(header.tag.as_str(), "prop");
        prop_assert_eq!(&header.meta, &meta);
        prop_assert_eq!(header.volumes.len(), 1);
        let vol = &header.volumes[0];
        prop_assert_eq!(vol.config.block_bits, block_bits);
        prop_assert_eq!(vol.extents.len(), lens.len());
        for (e, &(bits, freed)) in vol.extents.iter().zip(&lens) {
            // Freed extents keep their id but store nothing.
            let want_bits = if freed { 0 } else { bits };
            prop_assert_eq!(e.bit_len, want_bits);
            prop_assert_eq!(e.freed, freed);
            prop_assert_eq!(e.file_off == u64::MAX, want_bits == 0);
        }
    }

    // Flipping any single byte of the metadata prefix (superblock +
    // extent table + index metadata) yields a typed error, never a panic
    // or a silent success.
    #[test]
    fn any_metadata_corruption_is_detected(byte_seed in 0usize..4096, xor in 1u8..255) {
        let disk = build_disk(256, &[(700, false), (0, false), (130, true)]);
        let meta = vec![7u8; 600];
        let path = tmp("corrupt.psi");
        write_store(&path, "prop", &meta, &[&disk]).expect("write");
        let mut bytes = std::fs::read(&path).expect("read file");
        // Metadata prefix: superblock + 1 table page + 1 meta page.
        let prefix = 3 * META_PAGE;
        let at = byte_seed % prefix;
        bytes[at] ^= xor;
        std::fs::write(&path, &bytes).expect("rewrite");
        match read_header(&path) {
            Err(
                StoreError::BadMagic
                | StoreError::BadVersion { .. }
                | StoreError::Corrupt { .. }
                | StoreError::Truncated { .. }
                | StoreError::Meta { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
            Ok(_) => prop_assert!(false, "corruption at byte {at} went undetected"),
        }
    }

    // Truncating the file anywhere yields a typed error at open.
    #[test]
    fn any_truncation_is_detected(permille in 0u64..1000) {
        let disk = build_disk(256, &[(5000, false), (300, false)]);
        let path = tmp("truncated.psi");
        let full = write_store(&path, "prop", &[1, 2, 3], &[&disk]).expect("write");
        let keep = full * permille / 1000;
        prop_assume!(keep < full);
        let bytes = std::fs::read(&path).expect("read file");
        std::fs::write(&path, &bytes[..keep as usize]).expect("rewrite");
        match read_header(&path) {
            Err(StoreError::Truncated { .. } | StoreError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
            Ok(_) => prop_assert!(false, "truncation to {keep}/{full} went undetected"),
        }
    }
}

#[test]
fn bad_magic_is_typed() {
    let disk = build_disk(128, &[(100, false)]);
    let path = tmp("magic.psi");
    write_store(&path, "t", &[], &[&disk]).expect("write");
    let mut bytes = std::fs::read(&path).expect("read");
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).expect("rewrite");
    assert!(matches!(read_header(&path), Err(StoreError::BadMagic)));
}

#[test]
fn bad_version_is_typed() {
    let disk = build_disk(128, &[(100, false)]);
    let path = tmp("version.psi");
    write_store(&path, "t", &[], &[&disk]).expect("write");
    let mut bytes = std::fs::read(&path).expect("read");
    bytes[8] = 0xFF; // version field
    std::fs::write(&path, &bytes).expect("rewrite");
    // The checksum catches the flip first unless it is recomputed; patch
    // the checksum to prove the version check itself is typed.
    let payload = psi_store::fnv1a64(&bytes[..META_PAGE - 8]);
    bytes[META_PAGE - 8..META_PAGE].copy_from_slice(&payload.to_le_bytes());
    std::fs::write(&path, &bytes).expect("rewrite");
    assert!(matches!(
        read_header(&path),
        Err(StoreError::BadVersion { found }) if found == 0xFF || found > 1
    ));
}

#[test]
fn corrupt_payload_page_passes_open_but_fails_the_scrub() {
    // Payload pages are fetched (and verified) lazily, so open succeeds;
    // the full-file scrub pins the corruption to a typed error.
    let disk = build_disk(256, &[(4000, false)]);
    let path = tmp("payload.psi");
    let full = write_store(&path, "t", &[9; 40], &[&disk]).expect("write");
    let mut bytes = std::fs::read(&path).expect("read");
    let at = (full - 17) as usize; // inside the last payload page
    bytes[at] ^= 0x40;
    std::fs::write(&path, &bytes).expect("rewrite");
    assert!(read_header(&path).is_ok(), "open must not touch payload");
    assert!(matches!(
        psi_store::format::scrub(&path),
        Err(StoreError::Corrupt { .. })
    ));
}

#[test]
fn missing_file_is_io_error() {
    // A missing file is a permanent failure: retrying cannot create it.
    let err = read_header(std::path::Path::new("/nonexistent/psi.store")).unwrap_err();
    assert!(matches!(
        err,
        StoreError::Io {
            class: psi_io::ErrorClass::Permanent,
            ..
        }
    ));
    assert_eq!(err.class(), psi_io::ErrorClass::Permanent);
}

#[test]
fn wrong_family_is_typed_at_open() {
    // Saved as one tag, opened as another through the persist API.
    use psi_store::{open, OpenOptions};
    let disk = build_disk(128, &[(64, false)]);
    let path = tmp("family.psi");
    write_store(&path, "some_family", &[], &[&disk]).expect("write");
    struct Probe;
    impl psi_store::PersistIndex for Probe {
        const TAG: &'static str = "other_family";
        fn write_meta(&self, _out: &mut psi_store::MetaBuf) {}
        fn disks(&self) -> Vec<&Disk> {
            Vec::new()
        }
        fn from_parts(
            _meta: &mut psi_store::MetaCursor,
            _disks: Vec<Disk>,
        ) -> Result<Self, StoreError> {
            Ok(Probe)
        }
    }
    assert!(matches!(
        open::<Probe>(&path, &OpenOptions::default()),
        Err(StoreError::WrongFamily { .. })
    ));
}
