//! # psi-query — multi-attribute conjunctive queries
//!
//! The reason secondary indexes exist (paper §1): "in a database of
//! people we may want to find all married men of age 33", answered by
//! combining one per-attribute index per predicate through RID
//! intersection — without decompressing every result. This crate is that
//! layer for the `psi` workspace:
//!
//! * [`Predicate`] — the query algebra: point and range predicates on
//!   named attributes, negation, conjunction; normalized into a flat
//!   [`ConjunctiveQuery`].
//! * [`plan_conjunction`] — the cost-based planner: per-condition
//!   cardinality estimates (from
//!   [`psi_api::SecondaryIndex::cardinality_hint`] — prefix counts and
//!   catalog directories, read before any payload decode) order the
//!   intersection ascending and pick a [`CombineStrategy`]: galloping
//!   intersection, semi-join `contains` probes, or a linear co-scan for
//!   non-selective conjunctions.
//! * [`IndexedTable`] — the executor: one [`psi_api::SecondaryIndex`]
//!   per attribute (the paper's engine or any baseline), each condition
//!   charged under its own session, every strategy consuming identical
//!   covers so simulated I/O is identical by construction.
//!
//! The `tests/` directory holds the workload-replay differential harness
//! that pins every planner branch, for every index family, against the
//! [`Predicate::naive_rows`] full scan.
//!
//! ```
//! use psi_query::{IndexedTable, Predicate};
//!
//! let table = psi_workloads::people_table(10_000, 42);
//! let indexed = IndexedTable::build(&table, |symbols, sigma| {
//!     Box::new(psi_core_stub::build(symbols, sigma))
//! });
//! # mod psi_core_stub {
//! #     use psi_api::{naive_query, RidSet, SecondaryIndex, Symbol};
//! #     pub struct S(Vec<Symbol>, u32);
//! #     impl SecondaryIndex for S {
//! #         fn len(&self) -> u64 { self.0.len() as u64 }
//! #         fn sigma(&self) -> Symbol { self.1 }
//! #         fn space_bits(&self) -> u64 { 0 }
//! #         fn query(&self, lo: Symbol, hi: Symbol, _io: &psi_io::IoSession) -> RidSet {
//! #             naive_query(&self.0, lo, hi)
//! #         }
//! #     }
//! #     pub fn build(s: &[Symbol], sigma: u32) -> S { S(s.to_vec(), sigma) }
//! # }
//! // Married (status 1) men (sex 0) aged 30–35.
//! let married_men_30s = Predicate::and([
//!     Predicate::point("marital_status", 1),
//!     Predicate::point("sex", 0),
//!     Predicate::range("age", 30, 35),
//! ]);
//! let outcome = indexed.execute(&married_men_30s).unwrap();
//! assert_eq!(
//!     outcome.rows.to_vec(),
//!     married_men_30s.naive_rows(&table)
//! );
//! ```

#![warn(missing_docs)]

mod batch;
mod exec;
pub mod metrics;
mod plan;
mod predicate;
mod trace;

pub use batch::grouped_order;
pub use exec::{IndexedColumn, IndexedTable, QueryOutcome};
pub use metrics::{query_metrics, QueryMetrics};
pub use plan::{plan_conjunction, CombineStrategy, Plan, PROBE_RATIO, SCAN_MIN_FRACTION};
pub use predicate::{AttrCondition, ConjunctiveQuery, Predicate, Symbol};
pub use trace::{CondTrace, PlanTrace};

/// Errors surfaced by normalization, planning and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The predicate is not expressible as a conjunction of per-attribute
    /// conditions (a negated multi-term conjunction is a disjunction).
    NotConjunctive,
    /// A predicate names an attribute the indexed table does not have.
    UnknownAttribute(String),
    /// A real block read failed under an index query and the executor
    /// could not degrade around it (the fault was transient-exhausted or
    /// permanent, or it was corruption on an attribute with no attached
    /// source column to scan instead).
    Read(psi_io::ReadError),
    /// The named attribute's index has quarantined extents and no source
    /// column data is attached, so neither the index path nor the
    /// table-scan fallback can answer for it.
    Quarantined(String),
    /// The query's execution panicked (a bug in an index implementation,
    /// or a read abort raised outside its catch frame). Batch execution
    /// contains the unwind to the offending query's result slot; the
    /// payload message is preserved here.
    Panicked(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NotConjunctive => {
                write!(
                    f,
                    "predicate is not a conjunction of per-attribute conditions"
                )
            }
            QueryError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            QueryError::Read(e) => write!(f, "index read failed: {e}"),
            QueryError::Quarantined(a) => {
                write!(
                    f,
                    "attribute `{a}` is quarantined and has no source data for scan fallback"
                )
            }
            QueryError::Panicked(msg) => write!(f, "query execution panicked: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Read(e) => Some(e),
            _ => None,
        }
    }
}
