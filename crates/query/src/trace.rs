//! Per-query plan traces: what the planner chose, what it believed, and
//! what actually happened.
//!
//! Every execution produces a [`PlanTrace`] attached to
//! [`crate::QueryOutcome`]: the combine strategy, the per-condition
//! execution order with the planner's cardinality estimate next to the
//! actual result size, the blocks each condition read, and (when
//! recording is enabled) wall-clock per-condition timings. The trace is
//! plain data — cheap to build, comparable in tests, renderable as an
//! `EXPLAIN ANALYZE`-style report via [`PlanTrace::render`], and the
//! payload the server's slow-query log captures.

use crate::plan::CombineStrategy;

/// What one condition of a conjunctive query did at execution time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondTrace {
    /// Attribute the condition filters on.
    pub attr: String,
    /// Whether the condition was negated after normalization.
    pub negated: bool,
    /// The planner's pre-decode cardinality estimate (drives the
    /// execution order).
    pub estimate: u64,
    /// Actual result cardinality of the condition.
    pub actual: u64,
    /// Simulated blocks read answering this condition.
    pub blocks_read: u64,
    /// Wall-clock nanoseconds spent on this condition (0 when metrics
    /// recording is disabled — the stripped path reads no clock).
    pub elapsed_ns: u64,
    /// Whether the condition was answered by the degraded table-scan
    /// fallback instead of its index.
    pub degraded: bool,
}

/// The full execution trace of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanTrace {
    /// Combine strategy the planner chose.
    pub strategy: CombineStrategy,
    /// Per-condition traces, in execution order.
    pub conditions: Vec<CondTrace>,
    /// Cardinality of the combined result.
    pub result_rows: u64,
    /// Wall-clock nanoseconds for the whole execution (0 when metrics
    /// recording is disabled).
    pub elapsed_ns: u64,
}

impl PlanTrace {
    /// Largest estimate-vs-actual misestimate factor across conditions
    /// (1.0 = every estimate exact). The planner's order is only as good
    /// as its estimates; this is the one-number health check.
    pub fn worst_misestimate(&self) -> f64 {
        self.conditions
            .iter()
            .map(|c| {
                let (e, a) = (c.estimate.max(1) as f64, c.actual.max(1) as f64);
                (e / a).max(a / e)
            })
            .fold(1.0, f64::max)
    }

    /// Renders the trace as an `EXPLAIN ANALYZE`-style report: one line
    /// per condition in execution order, then the combine summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan: {:?} over {} condition(s)",
            self.strategy,
            self.conditions.len()
        );
        for (i, c) in self.conditions.iter().enumerate() {
            let _ = writeln!(
                out,
                "  [{i}] {}{}: est={} actual={} blocks={}{}{}",
                if c.negated { "not " } else { "" },
                c.attr,
                c.estimate,
                c.actual,
                c.blocks_read,
                if c.elapsed_ns > 0 {
                    format!(" time={}ns", c.elapsed_ns)
                } else {
                    String::new()
                },
                if c.degraded { " DEGRADED(scan)" } else { "" },
            );
        }
        let _ = writeln!(
            out,
            "result: {} row(s){} worst_misestimate={:.2}",
            self.result_rows,
            if self.elapsed_ns > 0 {
                format!(" in {}ns", self.elapsed_ns)
            } else {
                String::new()
            },
            self.worst_misestimate(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(attr: &str, estimate: u64, actual: u64) -> CondTrace {
        CondTrace {
            attr: attr.into(),
            negated: false,
            estimate,
            actual,
            blocks_read: 2,
            elapsed_ns: 0,
            degraded: false,
        }
    }

    #[test]
    fn worst_misestimate_is_symmetric_and_floored_at_one() {
        let t = PlanTrace {
            strategy: CombineStrategy::Gallop,
            conditions: vec![cond("a", 10, 10), cond("b", 3, 12), cond("c", 8, 2)],
            result_rows: 2,
            elapsed_ns: 0,
        };
        assert!((t.worst_misestimate() - 4.0).abs() < 1e-9);
        let exact = PlanTrace {
            strategy: CombineStrategy::Scan,
            conditions: vec![cond("a", 5, 5)],
            result_rows: 5,
            elapsed_ns: 0,
        };
        assert!((exact.worst_misestimate() - 1.0).abs() < 1e-9);
        // Zero estimates and actuals do not divide by zero.
        let zeros = PlanTrace {
            strategy: CombineStrategy::Probe,
            conditions: vec![cond("a", 0, 0)],
            result_rows: 0,
            elapsed_ns: 0,
        };
        assert!((zeros.worst_misestimate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_every_condition_and_flags_degradation() {
        let mut c = cond("city", 4, 7);
        c.degraded = true;
        c.negated = true;
        let t = PlanTrace {
            strategy: CombineStrategy::Probe,
            conditions: vec![cond("age", 2, 2), c],
            result_rows: 1,
            elapsed_ns: 0,
        };
        let text = t.render();
        assert!(text.contains("Probe"));
        assert!(text.contains("[0] age: est=2 actual=2"));
        assert!(text.contains("[1] not city"));
        assert!(text.contains("DEGRADED(scan)"));
        assert!(text.contains("result: 1 row(s)"));
    }
}
