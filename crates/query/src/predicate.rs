//! The predicate algebra over multi-attribute tables.
//!
//! The paper motivates secondary indexes with conjunctive multi-predicate
//! queries — "in a database of people we may want to find all married men
//! of age 33" (§1) — each predicate answered by one per-attribute index
//! and the results combined by RID intersection. [`Predicate`] is the
//! algebra those queries are written in: point and range predicates on
//! named attributes, negation, and conjunction. [`Predicate::normalize`]
//! lowers a tree into the flat [`ConjunctiveQuery`] form the planner and
//! executor work on; [`Predicate::naive_rows`] is the full-scan oracle the
//! differential harness replays every plan against.

use psi_workloads::Table;

use crate::QueryError;

/// Symbols are dense character codes (dictionary-encoded attribute
/// values), re-exported from `psi_api`.
pub type Symbol = psi_api::Symbol;

/// A predicate over the rows of a multi-attribute table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `attr = value` — an exact match on one attribute.
    Point {
        /// Attribute (column) name.
        attr: String,
        /// The matched value.
        value: Symbol,
    },
    /// `lo ≤ attr ≤ hi` — the paper's alphabet range query on one
    /// attribute (inclusive endpoints).
    Range {
        /// Attribute (column) name.
        attr: String,
        /// Left endpoint.
        lo: Symbol,
        /// Right endpoint (`≥ lo` for a non-empty range).
        hi: Symbol,
    },
    /// Logical negation of a predicate.
    Not(Box<Predicate>),
    /// Conjunction of predicates (`And(vec![])` is `true`: all rows).
    And(Vec<Predicate>),
}

impl Predicate {
    /// `attr = value`.
    pub fn point(attr: impl Into<String>, value: Symbol) -> Predicate {
        Predicate::Point {
            attr: attr.into(),
            value,
        }
    }

    /// `lo ≤ attr ≤ hi`.
    pub fn range(attr: impl Into<String>, lo: Symbol, hi: Symbol) -> Predicate {
        Predicate::Range {
            attr: attr.into(),
            lo,
            hi,
        }
    }

    /// `¬p`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(p: Predicate) -> Predicate {
        Predicate::Not(Box::new(p))
    }

    /// `p₁ ∧ p₂ ∧ …`.
    pub fn and(ps: impl IntoIterator<Item = Predicate>) -> Predicate {
        Predicate::And(ps.into_iter().collect())
    }

    /// Evaluates the predicate on one row, looking attribute values up
    /// through `value_of`. This is the executable specification: every
    /// planner branch must agree with a scan filtered by this function.
    pub fn matches_row(&self, value_of: &dyn Fn(&str) -> Symbol) -> bool {
        match self {
            Predicate::Point { attr, value } => value_of(attr) == *value,
            Predicate::Range { attr, lo, hi } => (*lo..=*hi).contains(&value_of(attr)),
            Predicate::Not(p) => !p.matches_row(value_of),
            Predicate::And(ps) => ps.iter().all(|p| p.matches_row(value_of)),
        }
    }

    /// The exact answer on a table, by brute-force row scan — the ground
    /// truth for the workload-replay differential tests.
    ///
    /// # Panics
    /// Panics if the predicate names an attribute the table lacks.
    pub fn naive_rows(&self, table: &Table) -> Vec<u64> {
        let lookup = |row: usize| {
            move |name: &str| {
                table
                    .column(name)
                    .unwrap_or_else(|| panic!("no column {name}"))
                    .data[row]
            }
        };
        (0..table.rows())
            .filter(|&i| self.matches_row(&lookup(i)))
            .map(|i| i as u64)
            .collect()
    }

    /// Lowers the algebra into a flat conjunction of per-attribute
    /// (possibly negated) range conditions.
    ///
    /// `Not` distributes over points and ranges as a condition flag and
    /// cancels pairwise; a negated conjunction is rejected with
    /// [`QueryError::NotConjunctive`] unless it has exactly one term —
    /// with more it is a disjunction (De Morgan), and with none it is
    /// logical *false*, which the flat form cannot express (an empty
    /// condition list means *all rows*). This engine evaluates
    /// conjunctions only.
    ///
    /// Repeated conditions on one attribute are collapsed: the
    /// conjunction of positive ranges on the same attribute is exactly
    /// their intersection, so `a ∈ [0,5] ∧ a ∈ [3,9]` normalizes to the
    /// single condition `a ∈ [3,5]` — one index probe, not two. An empty
    /// intersection is kept as a single `lo > hi` condition (the
    /// executor answers it as the empty set without touching the index).
    /// Negated conditions exclude a range each, so distinct ones cannot
    /// merge into one interval; only exact duplicates are deduplicated.
    pub fn normalize(&self) -> Result<ConjunctiveQuery, QueryError> {
        let mut conditions = Vec::new();
        self.normalize_into(false, &mut conditions)?;
        Ok(ConjunctiveQuery {
            conditions: merge_same_attribute(conditions),
        })
    }

    fn normalize_into(
        &self,
        negated: bool,
        out: &mut Vec<AttrCondition>,
    ) -> Result<(), QueryError> {
        match self {
            Predicate::Point { attr, value } => {
                out.push(AttrCondition {
                    attr: attr.clone(),
                    lo: *value,
                    hi: *value,
                    negated,
                });
                Ok(())
            }
            Predicate::Range { attr, lo, hi } => {
                out.push(AttrCondition {
                    attr: attr.clone(),
                    lo: *lo,
                    hi: *hi,
                    negated,
                });
                Ok(())
            }
            Predicate::Not(p) => p.normalize_into(!negated, out),
            Predicate::And(ps) => {
                if negated && ps.len() != 1 {
                    return Err(QueryError::NotConjunctive);
                }
                for p in ps {
                    p.normalize_into(negated, out)?;
                }
                Ok(())
            }
        }
    }
}

/// Collapses repeated conditions on one attribute, preserving first-
/// occurrence order: positive ranges intersect into one condition
/// (`lo = max`, `hi = min` — `lo > hi` when the intersection is empty,
/// which stays empty under further merging), and negated conditions
/// deduplicate exact repeats but otherwise stay separate (each excludes
/// its own interval; their conjunction is not an interval).
fn merge_same_attribute(conditions: Vec<AttrCondition>) -> Vec<AttrCondition> {
    let mut out: Vec<AttrCondition> = Vec::with_capacity(conditions.len());
    for cond in conditions {
        if cond.negated {
            if !out.contains(&cond) {
                out.push(cond);
            }
            continue;
        }
        match out.iter_mut().find(|c| !c.negated && c.attr == cond.attr) {
            Some(prev) => {
                prev.lo = prev.lo.max(cond.lo);
                prev.hi = prev.hi.min(cond.hi);
            }
            None => out.push(cond),
        }
    }
    out
}

/// One flattened conjunct: a (possibly negated) inclusive range on one
/// attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrCondition {
    /// Attribute (column) name.
    pub attr: String,
    /// Left endpoint.
    pub lo: Symbol,
    /// Right endpoint.
    pub hi: Symbol,
    /// Whether the condition is `attr ∉ [lo, hi]` instead of `∈`.
    pub negated: bool,
}

/// A conjunction of per-attribute conditions — the planner's input.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConjunctiveQuery {
    /// The conjuncts, in the order the predicate listed them (the
    /// planner reorders a copy; replay harnesses force this order).
    pub conditions: Vec<AttrCondition>,
}

impl ConjunctiveQuery {
    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.conditions.len()
    }

    /// Whether there are no conjuncts (the all-rows query).
    pub fn is_empty(&self) -> bool {
        self.conditions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_workloads::{Column, Table};

    fn table() -> Table {
        Table {
            columns: vec![
                Column {
                    name: "x".into(),
                    sigma: 4,
                    data: vec![0, 1, 2, 3, 1, 2],
                },
                Column {
                    name: "y".into(),
                    sigma: 3,
                    data: vec![2, 2, 1, 0, 0, 2],
                },
            ],
        }
    }

    #[test]
    fn naive_rows_evaluates_the_algebra() {
        let t = table();
        let p = Predicate::and([
            Predicate::range("x", 1, 2),
            Predicate::not(Predicate::point("y", 0)),
        ]);
        assert_eq!(p.naive_rows(&t), vec![1, 2, 5]);
        // Empty conjunction matches everything.
        assert_eq!(Predicate::and([]).naive_rows(&t).len(), 6);
    }

    #[test]
    fn normalization_flattens_and_cancels_double_negation() {
        let p = Predicate::and([
            Predicate::point("x", 2),
            Predicate::not(Predicate::not(Predicate::range("y", 0, 1))),
            Predicate::not(Predicate::range("y", 2, 2)),
        ]);
        let q = p.normalize().unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(
            q.conditions[0],
            AttrCondition {
                attr: "x".into(),
                lo: 2,
                hi: 2,
                negated: false
            }
        );
        assert!(!q.conditions[1].negated);
        assert!(q.conditions[2].negated);
    }

    #[test]
    fn nested_conjunctions_flatten_and_merge_per_attribute() {
        let p = Predicate::and([
            Predicate::and([Predicate::point("x", 0), Predicate::point("y", 1)]),
            Predicate::range("x", 0, 3),
        ]);
        // The two x-conditions intersect into one: x = 0 ∧ x ∈ [0,3] is
        // just x = 0.
        let q = p.normalize().unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.conditions[0],
            AttrCondition {
                attr: "x".into(),
                lo: 0,
                hi: 0,
                negated: false
            }
        );
        assert_eq!(q.conditions[1].attr, "y");
    }

    #[test]
    fn same_attribute_conditions_intersect() {
        // Range ∧ Range.
        let q = Predicate::and([Predicate::range("x", 0, 5), Predicate::range("x", 3, 9)])
            .normalize()
            .unwrap();
        assert_eq!(
            q.conditions,
            vec![AttrCondition {
                attr: "x".into(),
                lo: 3,
                hi: 5,
                negated: false
            }]
        );
        // Point ∧ Range, point inside.
        let q = Predicate::and([Predicate::point("x", 2), Predicate::range("x", 1, 3)])
            .normalize()
            .unwrap();
        assert_eq!(
            q.conditions,
            vec![AttrCondition {
                attr: "x".into(),
                lo: 2,
                hi: 2,
                negated: false
            }]
        );
        // Disjoint ranges: one empty condition (lo > hi), not two probes.
        let q = Predicate::and([Predicate::range("x", 0, 1), Predicate::range("x", 3, 3)])
            .normalize()
            .unwrap();
        assert_eq!(q.len(), 1);
        assert!(
            q.conditions[0].lo > q.conditions[0].hi,
            "empty intersection"
        );
        // Emptiness is sticky under further merging.
        let q = Predicate::and([
            Predicate::range("x", 0, 1),
            Predicate::range("x", 3, 3),
            Predicate::range("x", 0, 9),
        ])
        .normalize()
        .unwrap();
        assert_eq!(q.len(), 1);
        assert!(q.conditions[0].lo > q.conditions[0].hi);
        // The merged form answers rows identically to the tree.
        let t = table();
        let p = Predicate::and([Predicate::range("x", 1, 3), Predicate::range("x", 2, 9)]);
        assert_eq!(p.naive_rows(&t), vec![2, 3, 5]);
    }

    #[test]
    fn negated_conditions_dedupe_but_do_not_merge() {
        // Two distinct negated ranges exclude different intervals: both
        // conditions survive (their conjunction is not one interval).
        let p = Predicate::and([
            Predicate::not(Predicate::point("x", 0)),
            Predicate::not(Predicate::point("x", 3)),
        ]);
        let q = p.normalize().unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(p.naive_rows(&table()), vec![1, 2, 4, 5]);
        // An exact duplicate negation is one condition.
        let q = Predicate::and([
            Predicate::not(Predicate::point("x", 0)),
            Predicate::not(Predicate::point("x", 0)),
        ])
        .normalize()
        .unwrap();
        assert_eq!(q.len(), 1);
        // Positive and negated conditions on one attribute never merge.
        let q = Predicate::and([
            Predicate::range("x", 0, 2),
            Predicate::not(Predicate::point("x", 1)),
        ])
        .normalize()
        .unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn negated_conjunction_is_rejected() {
        let p = Predicate::not(Predicate::and([
            Predicate::point("x", 0),
            Predicate::point("y", 1),
        ]));
        assert_eq!(p.normalize().unwrap_err(), QueryError::NotConjunctive);
        // A negated single-term conjunction is fine.
        let p1 = Predicate::not(Predicate::and([Predicate::point("x", 0)]));
        assert!(p1.normalize().unwrap().conditions[0].negated);
        // A negated *empty* conjunction is logical false — inexpressible
        // in the flat form (empty conditions mean all rows), so rejected.
        let p0 = Predicate::not(Predicate::and([]));
        assert_eq!(p0.normalize().unwrap_err(), QueryError::NotConjunctive);
        assert_eq!(p0.naive_rows(&table()), Vec::<u64>::new());
    }
}
