//! Execution of conjunctive queries over per-attribute secondary indexes.
//!
//! An [`IndexedTable`] holds one [`SecondaryIndex`] per attribute of a
//! [`Table`]. Executing a [`Predicate`] normalizes it, plans the
//! intersection order from pre-decode cardinality estimates, runs one
//! alphabet range query per condition (each under its own fresh
//! [`IoSession`], so the reported cost is the sum of the per-index
//! operations — including every skip-directory lift those queries
//! charge), and combines the compressed results with the planned
//! strategy. All strategies consume identical covers, so their simulated
//! I/O is identical by construction; `tests/io_parity.rs` asserts it the
//! way PR 2's forced-heap replay pins the merge planner.

use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;

use psi_api::{naive_query, RidSet, SecondaryIndex, Symbol};
use psi_bits::GapBitmap;
use psi_io::{ErrorClass, IoSession, IoStats};
use psi_workloads::Table;

use crate::metrics::query_metrics;
use crate::plan::{plan_conjunction, CombineStrategy, Plan};
use crate::predicate::{AttrCondition, ConjunctiveQuery, Predicate};
use crate::trace::{CondTrace, PlanTrace};
use crate::QueryError;

/// One indexed attribute: the column's name and alphabet plus the
/// secondary index built over its values.
pub struct IndexedColumn {
    /// Attribute name (matched by [`AttrCondition::attr`]).
    pub name: String,
    /// Alphabet size of the dictionary-encoded attribute.
    pub sigma: u32,
    /// The per-attribute secondary index.
    pub index: Box<dyn SecondaryIndex>,
}

impl std::fmt::Debug for IndexedColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexedColumn")
            .field("name", &self.name)
            .field("sigma", &self.sigma)
            .field("n", &self.index.len())
            .finish()
    }
}

/// The result of executing one predicate: the compressed row set, the
/// plan that produced it, and the summed per-condition I/O statistics.
#[derive(Debug)]
pub struct QueryOutcome {
    /// Matching rows, compressed (positions or complement).
    pub rows: RidSet,
    /// The plan that was executed.
    pub plan: Plan,
    /// Summed I/O of the per-condition index queries (each condition runs
    /// under its own fresh session, exactly like a standalone
    /// [`SecondaryIndex::query_measured`] call).
    pub io: IoStats,
    /// Attributes answered by the degraded table-scan fallback instead of
    /// their index — either already quarantined at plan time or
    /// quarantined mid-query by a verified-fetch corruption. Empty on a
    /// healthy read path.
    pub degraded: Vec<String>,
    /// The execution trace: per-condition estimates vs. actuals, blocks
    /// read, timings (when metrics recording is on), and the combine
    /// summary. Render with [`PlanTrace::render`].
    pub trace: PlanTrace,
}

/// A multi-attribute table with one secondary index per column.
///
/// Beyond the per-attribute indexes, the table carries the fault-tolerant
/// read path's state: optional **source columns** (the dictionary-encoded
/// values each index was built from — the scan-fallback and rebuild
/// substrate) and the **extent quarantine** (per-attribute sets of extent
/// ids whose pages failed checksum verification). A corrupt fetch
/// quarantines its extent and degrades that attribute to a table scan;
/// [`IndexedTable::rebuild_attribute`] restores the index path.
#[derive(Debug)]
pub struct IndexedTable {
    n: u64,
    columns: Vec<IndexedColumn>,
    /// Source values per attribute, where attached ([`IndexedTable::build`]
    /// captures them; [`IndexedTable::from_columns`] starts empty).
    sources: HashMap<String, Vec<Symbol>>,
    /// Quarantined extent ids per attribute. A non-empty set takes the
    /// whole attribute off its index: one corrupt extent means the
    /// volume's integrity is in question until rebuilt.
    quarantine: Mutex<HashMap<String, BTreeSet<u32>>>,
}

impl IndexedTable {
    /// Builds one index per column of `table` through `build_index`
    /// (called with the column's values and alphabet size) — the hook
    /// that wires the engine indexes and every baseline through the same
    /// executor.
    pub fn build<F>(table: &Table, mut build_index: F) -> IndexedTable
    where
        F: FnMut(&[Symbol], u32) -> Box<dyn SecondaryIndex>,
    {
        let n = table.rows() as u64;
        let columns: Vec<IndexedColumn> = table
            .columns
            .iter()
            .map(|c| {
                let index = build_index(&c.data, c.sigma);
                assert_eq!(index.len(), n, "index length mismatch on {}", c.name);
                IndexedColumn {
                    name: c.name.clone(),
                    sigma: c.sigma,
                    index,
                }
            })
            .collect();
        // Keep the source values: they are the substrate of the degraded
        // scan fallback and of `rebuild_attribute`.
        let sources = table
            .columns
            .iter()
            .map(|c| (c.name.clone(), c.data.clone()))
            .collect();
        IndexedTable {
            n,
            columns,
            sources,
            quarantine: Mutex::new(HashMap::new()),
        }
    }

    /// Wraps pre-built per-attribute indexes (all of the same length).
    ///
    /// No source columns are attached: a corrupt fetch on such a table
    /// surfaces as [`QueryError::Read`] instead of degrading, until
    /// [`IndexedTable::attach_column_data`] supplies the values.
    pub fn from_columns(columns: Vec<IndexedColumn>) -> IndexedTable {
        let n = columns.first().map_or(0, |c| c.index.len());
        for c in &columns {
            assert_eq!(c.index.len(), n, "index length mismatch on {}", c.name);
        }
        IndexedTable {
            n,
            columns,
            sources: HashMap::new(),
            quarantine: Mutex::new(HashMap::new()),
        }
    }

    /// Attaches (or replaces) the source values of one attribute,
    /// enabling the scan fallback and [`IndexedTable::rebuild_attribute`]
    /// for tables assembled via [`IndexedTable::from_columns`].
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the table's row count.
    pub fn attach_column_data(&mut self, attr: &str, data: Vec<Symbol>) -> Result<(), QueryError> {
        self.column(attr)?;
        assert_eq!(
            data.len() as u64,
            self.n,
            "source column length mismatch on {attr}"
        );
        self.sources.insert(attr.to_string(), data);
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.n
    }

    /// The indexed columns.
    pub fn columns(&self) -> &[IndexedColumn] {
        &self.columns
    }

    fn column(&self, name: &str) -> Result<&IndexedColumn, QueryError> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| QueryError::UnknownAttribute(name.to_string()))
    }

    /// The quarantine map, tolerating a poisoned lock: quarantine state
    /// is a plain set of ids, valid under any interleaving, and the read
    /// path must keep degrading even after a panicked peer thread.
    fn quarantine_lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, BTreeSet<u32>>> {
        self.quarantine
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Marks one extent of `attr`'s index as corrupt. Until
    /// [`IndexedTable::rebuild_attribute`] clears it, every query
    /// touching `attr` degrades to the table-scan fallback. Fed by the
    /// executor itself (on a corrupt fetch) and by scrubber reports.
    pub fn quarantine_extent(&self, attr: &str, extent: u32) -> Result<(), QueryError> {
        self.column(attr)?;
        let fresh = self
            .quarantine_lock()
            .entry(attr.to_string())
            .or_default()
            .insert(extent);
        if fresh {
            query_metrics().quarantine_events.inc();
        }
        Ok(())
    }

    /// Every attribute with quarantined extents, with its extent ids
    /// ascending — the registry-snapshot view of the quarantine that the
    /// server's `STATS` op publishes.
    pub fn quarantine_snapshot(&self) -> Vec<(String, Vec<u32>)> {
        let map = self.quarantine_lock();
        let mut out: Vec<(String, Vec<u32>)> = map
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(attr, s)| (attr.clone(), s.iter().copied().collect()))
            .collect();
        out.sort();
        out
    }

    /// Quarantined extent ids of one attribute, ascending (empty when
    /// healthy or unknown).
    pub fn quarantined_extents(&self, attr: &str) -> Vec<u32> {
        self.quarantine_lock()
            .get(attr)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Whether `attr` currently has quarantined extents.
    pub fn is_quarantined(&self, attr: &str) -> bool {
        self.quarantine_lock()
            .get(attr)
            .is_some_and(|s| !s.is_empty())
    }

    /// Clamps a condition's range to the column's alphabet; `None` when
    /// the positive range cannot match anything.
    fn clamp(col: &IndexedColumn, cond: &AttrCondition) -> Option<(Symbol, Symbol)> {
        if cond.lo >= col.sigma || cond.lo > cond.hi {
            return None;
        }
        Some((cond.lo, cond.hi.min(col.sigma - 1)))
    }

    /// Estimated result cardinality of one condition, from index metadata
    /// available before any decode ([`SecondaryIndex::cardinality_hint`]),
    /// falling back to a uniformity assumption when the structure keeps
    /// no counts. Negated conditions estimate `n − z`.
    pub fn estimate_condition(&self, cond: &AttrCondition) -> Result<u64, QueryError> {
        let col = self.column(&cond.attr)?;
        let base = match Self::clamp(col, cond) {
            None => 0,
            Some((lo, hi)) => col.index.cardinality_hint(lo, hi).unwrap_or_else(|| {
                let width = u64::from(hi - lo + 1);
                // max-then-min keeps the estimate positive without
                // tripping on an empty table (clamp(1, 0) would panic).
                (self.n * width / u64::from(col.sigma)).max(1).min(self.n)
            }),
        };
        Ok(if cond.negated { self.n - base } else { base })
    }

    /// Plans a conjunctive query: per-condition estimates, ascending
    /// selectivity order, and the combine strategy. Touches no index
    /// payload.
    pub fn plan_query(&self, query: &ConjunctiveQuery) -> Result<Plan, QueryError> {
        let estimates = query
            .conditions
            .iter()
            .map(|c| self.estimate_condition(c))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(plan_conjunction(self.n, &estimates))
    }

    /// Normalizes, plans and executes a predicate.
    pub fn execute(&self, predicate: &Predicate) -> Result<QueryOutcome, QueryError> {
        let query = predicate.normalize()?;
        self.execute_conjunctive(&query)
    }

    /// Executes `predicate` and renders its [`PlanTrace`] as an
    /// `EXPLAIN ANALYZE`-style report: chosen strategy, per-condition
    /// order with estimate vs. actual cardinality, blocks read, and
    /// degradation flags.
    pub fn explain(&self, predicate: &Predicate) -> Result<String, QueryError> {
        Ok(self.execute(predicate)?.trace.render())
    }

    /// Plans and executes an already-normalized conjunction.
    ///
    /// The planner consults the quarantine: conditions on healthy indexes
    /// keep their ascending-estimate order and run *first* (cheap index
    /// filters shrink the candidate set), quarantined attributes sort
    /// last and are answered by the table-scan fallback. The plan's
    /// degradation is reported in [`QueryOutcome::degraded`].
    pub fn execute_conjunctive(
        &self,
        query: &ConjunctiveQuery,
    ) -> Result<QueryOutcome, QueryError> {
        let mut plan = self.plan_query(query)?;
        // Re-sort by (quarantined, estimate, index): a stable refinement
        // of the healthy order that pushes degraded conditions to the
        // back without touching the Plan shape.
        let estimates: HashMap<usize, u64> = plan
            .order
            .iter()
            .zip(&plan.estimates)
            .map(|(&i, &z)| (i, z))
            .collect();
        plan.order.sort_by_key(|&i| {
            (
                self.is_quarantined(&query.conditions[i].attr),
                estimates[&i],
                i,
            )
        });
        plan.estimates = plan.order.iter().map(|&i| estimates[&i]).collect();
        self.run(query, plan)
    }

    /// Replay entry point: executes `query` with a forced condition order
    /// and combine strategy, bypassing the planner. The differential and
    /// I/O-parity suites drive every branch through here.
    pub fn execute_forced(
        &self,
        query: &ConjunctiveQuery,
        order: &[usize],
        strategy: CombineStrategy,
    ) -> Result<QueryOutcome, QueryError> {
        assert_eq!(
            order.len(),
            query.len(),
            "forced order must cover every condition"
        );
        let mut seen = vec![false; query.len()];
        for &i in order {
            assert!(
                i < query.len() && !std::mem::replace(&mut seen[i], true),
                "forced order must be a permutation of 0..{} (got {order:?})",
                query.len()
            );
        }
        let estimates = order
            .iter()
            .map(|&i| self.estimate_condition(&query.conditions[i]))
            .collect::<Result<Vec<_>, _>>()?;
        let plan = Plan {
            order: order.to_vec(),
            estimates,
            strategy,
        };
        self.run(query, plan)
    }

    /// Answers one condition by scanning its attached source column —
    /// the degraded path for quarantined attributes. Charges no
    /// simulated I/O (the scan reads table memory, not index payload).
    fn scan_condition(
        &self,
        col: &IndexedColumn,
        cond: &AttrCondition,
    ) -> Result<RidSet, QueryError> {
        let data = self
            .sources
            .get(&col.name)
            .ok_or_else(|| QueryError::Quarantined(col.name.clone()))?;
        let base = match Self::clamp(col, cond) {
            None => RidSet::from_positions(GapBitmap::empty(self.n)),
            Some((lo, hi)) => naive_query(data, lo, hi),
        };
        Ok(if cond.negated { base.negate() } else { base })
    }

    /// Runs one condition's index query under a fresh session, returning
    /// the (possibly negated) compressed result, the session stats, and
    /// whether the condition was answered degraded.
    ///
    /// Fault handling, per [`ErrorClass`]: a corrupt fetch quarantines
    /// its extent and retries the condition as a table scan (the error
    /// surfaces only if no source column is attached); transient and
    /// permanent failures propagate as [`QueryError::Read`] — by the
    /// time they reach here the per-session retry budget is spent, and
    /// no rebuild would change the outcome.
    fn eval_condition(&self, cond: &AttrCondition) -> Result<(RidSet, IoStats, bool), QueryError> {
        let col = self.column(&cond.attr)?;
        if self.is_quarantined(&cond.attr) {
            let rows = self.scan_condition(col, cond)?;
            return Ok((rows, IoStats::default(), true));
        }
        let io = IoSession::new();
        let base = match Self::clamp(col, cond) {
            None => RidSet::from_positions(GapBitmap::empty(self.n)),
            Some((lo, hi)) => match col.index.try_query(lo, hi, &io) {
                Ok(rows) => rows,
                Err(e) if e.class == ErrorClass::Corrupt => {
                    let fresh = self
                        .quarantine_lock()
                        .entry(cond.attr.clone())
                        .or_default()
                        .insert(e.extent.0);
                    if fresh {
                        query_metrics().quarantine_events.inc();
                    }
                    let rows = self
                        .scan_condition(col, cond)
                        .map_err(|_| QueryError::Read(e))?;
                    return Ok((rows, io.stats(), true));
                }
                Err(e) => return Err(QueryError::Read(e)),
            },
        };
        let rows = if cond.negated { base.negate() } else { base };
        Ok((rows, io.stats(), false))
    }

    fn run(&self, query: &ConjunctiveQuery, plan: Plan) -> Result<QueryOutcome, QueryError> {
        // Timings read the clock only while recording is enabled; the
        // stripped path builds the trace with zero timestamps.
        let t0 = psi_obs::enabled().then(std::time::Instant::now);
        let m = query_metrics();
        // The empty conjunction matches every row: the complement of the
        // empty set, produced without touching any index.
        if query.is_empty() {
            let rows = RidSet::from_complement(GapBitmap::empty(self.n));
            let trace = PlanTrace {
                strategy: plan.strategy,
                conditions: Vec::new(),
                result_rows: rows.cardinality(),
                elapsed_ns: t0.map_or(0, |t| t.elapsed().as_nanos() as u64),
            };
            m.executed.inc();
            m.rows.record(trace.result_rows);
            if let Some(t) = t0 {
                m.latency_ns.record_since(t);
            }
            return Ok(QueryOutcome {
                rows,
                plan,
                io: IoStats::default(),
                degraded: Vec::new(),
                trace,
            });
        }
        let mut io = IoStats::default();
        let mut degraded = Vec::new();
        let mut results = Vec::with_capacity(plan.order.len());
        let mut conditions = Vec::with_capacity(plan.order.len());
        for (k, &i) in plan.order.iter().enumerate() {
            let cond = &query.conditions[i];
            let c0 = t0.map(|_| std::time::Instant::now());
            let (rows, stats, fell_back) = self.eval_condition(cond)?;
            io = io.merged(&stats);
            if fell_back && !degraded.contains(&cond.attr) {
                degraded.push(cond.attr.clone());
            }
            conditions.push(CondTrace {
                attr: cond.attr.clone(),
                negated: cond.negated,
                estimate: plan.estimates[k],
                actual: rows.cardinality(),
                blocks_read: stats.reads,
                elapsed_ns: c0.map_or(0, |t| t.elapsed().as_nanos() as u64),
                degraded: fell_back,
            });
            results.push(rows);
        }
        degraded.sort();
        let rows = match plan.strategy {
            CombineStrategy::Gallop => {
                let mut iter = results.into_iter();
                let first = iter.next().expect("non-empty conjunction");
                iter.fold(first, |acc, r| acc.intersect(&r))
            }
            CombineStrategy::Probe => probe_combine(&results, self.n),
            CombineStrategy::Scan => coscan_combine(&results, self.n),
        };
        let trace = PlanTrace {
            strategy: plan.strategy,
            conditions,
            result_rows: rows.cardinality(),
            elapsed_ns: t0.map_or(0, |t| t.elapsed().as_nanos() as u64),
        };
        m.executed.inc();
        m.rows.record(trace.result_rows);
        if let Some(t) = t0 {
            m.latency_ns.record_since(t);
        }
        if !degraded.is_empty() {
            m.degraded.inc();
        }
        Ok(QueryOutcome {
            rows,
            plan,
            io,
            degraded,
            trace,
        })
    }

    /// Rebuilds one attribute's index from its attached source column
    /// and clears the attribute's quarantine — the online repair that
    /// restores the index path after corruption.
    ///
    /// The swap is atomic at the table level: queries either see the old
    /// (quarantined, scan-degraded) index or the fresh one, never a
    /// partial rebuild. `build_index` receives the source values and the
    /// column's alphabet, exactly like [`IndexedTable::build`]'s hook.
    pub fn rebuild_attribute<F>(&mut self, attr: &str, build_index: F) -> Result<(), QueryError>
    where
        F: FnOnce(&[Symbol], u32) -> Box<dyn SecondaryIndex>,
    {
        let n = self.n;
        let col = self
            .columns
            .iter_mut()
            .find(|c| c.name == attr)
            .ok_or_else(|| QueryError::UnknownAttribute(attr.to_string()))?;
        let data = self
            .sources
            .get(attr)
            .ok_or_else(|| QueryError::Quarantined(attr.to_string()))?;
        let fresh = build_index(data, col.sigma);
        assert_eq!(fresh.len(), n, "rebuilt index length mismatch on {attr}");
        col.index = fresh;
        self.quarantine_lock().remove(attr);
        Ok(())
    }
}

/// Semi-join combine: stream the first (smallest) result and keep each
/// row that every other result `contains` — one `O(lg z)` skip-directory
/// probe per (row, condition), no intermediate re-encoding.
fn probe_combine(results: &[RidSet], universe: u64) -> RidSet {
    let (first, rest) = results.split_first().expect("non-empty conjunction");
    let positions = first.iter().filter(|&p| rest.iter().all(|r| r.contains(p)));
    RidSet::from_positions(GapBitmap::from_sorted_iter(positions, universe))
}

/// Linear k-way co-scan: advance all logical streams in lockstep,
/// emitting positions present in every one. `O(Σ zᵢ)` — the fallback for
/// dense, non-selective inputs where no gallop can jump.
fn coscan_combine(results: &[RidSet], universe: u64) -> RidSet {
    let mut iters: Vec<_> = results.iter().map(|r| r.iter().peekable()).collect();
    let mut out = Vec::new();
    // `bound` is the smallest position any stream may still contribute;
    // each pass advances every stream to it. A pass either agrees on one
    // position (emitted) or raises the bound — so the scan is linear in
    // the summed logical sizes.
    let mut bound = 0u64;
    'outer: loop {
        let mut max = bound;
        let mut agree = true;
        for it in iters.iter_mut() {
            while it.peek().is_some_and(|&p| p < max) {
                it.next();
            }
            match it.peek() {
                None => break 'outer,
                Some(&p) if p > max => {
                    max = p;
                    agree = false;
                }
                Some(_) => {}
            }
        }
        if agree {
            out.push(max);
            bound = max + 1;
            for it in iters.iter_mut() {
                it.next();
            }
        } else {
            bound = max;
        }
    }
    RidSet::from_positions(GapBitmap::from_sorted(&out, universe))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_api::naive_query;

    /// A toy index for executor unit tests: queries scan an in-memory
    /// string (charging nothing), with an exact hint.
    struct ScanIndex {
        data: Vec<Symbol>,
        sigma: u32,
    }

    impl SecondaryIndex for ScanIndex {
        fn len(&self) -> u64 {
            self.data.len() as u64
        }
        fn sigma(&self) -> Symbol {
            self.sigma
        }
        fn space_bits(&self) -> u64 {
            0
        }
        fn query(&self, lo: Symbol, hi: Symbol, _io: &IoSession) -> RidSet {
            naive_query(&self.data, lo, hi)
        }
        fn cardinality_hint(&self, lo: Symbol, hi: Symbol) -> Option<u64> {
            Some(
                self.data
                    .iter()
                    .filter(|&&s| (lo..=hi).contains(&s))
                    .count() as u64,
            )
        }
    }

    /// [`ScanIndex`] without the hint: exercises the uniformity fallback.
    struct NoHintIndex(ScanIndex);

    impl SecondaryIndex for NoHintIndex {
        fn len(&self) -> u64 {
            self.0.len()
        }
        fn sigma(&self) -> Symbol {
            self.0.sigma()
        }
        fn space_bits(&self) -> u64 {
            0
        }
        fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
            self.0.query(lo, hi, io)
        }
    }

    fn indexed(cols: &[(&str, u32, Vec<Symbol>)]) -> IndexedTable {
        IndexedTable::from_columns(
            cols.iter()
                .map(|(name, sigma, data)| IndexedColumn {
                    name: (*name).to_string(),
                    sigma: *sigma,
                    index: Box::new(ScanIndex {
                        data: data.clone(),
                        sigma: *sigma,
                    }),
                })
                .collect(),
        )
    }

    #[test]
    fn executes_all_strategies_identically() {
        let t = indexed(&[
            ("a", 4, vec![0, 1, 2, 3, 1, 2, 0, 1]),
            ("b", 3, vec![2, 2, 1, 0, 0, 2, 1, 2]),
        ]);
        let q = Predicate::and([Predicate::range("a", 1, 2), Predicate::point("b", 2)])
            .normalize()
            .unwrap();
        let want = vec![1, 5, 7];
        for strategy in [
            CombineStrategy::Gallop,
            CombineStrategy::Probe,
            CombineStrategy::Scan,
        ] {
            for order in [vec![0, 1], vec![1, 0]] {
                let got = t.execute_forced(&q, &order, strategy).unwrap();
                assert_eq!(got.rows.to_vec(), want, "{strategy:?} {order:?}");
            }
        }
        let auto = t.execute_conjunctive(&q).unwrap();
        assert_eq!(auto.rows.to_vec(), want);
    }

    #[test]
    fn empty_conjunction_matches_all_rows() {
        let t = indexed(&[("a", 2, vec![0, 1, 0])]);
        let out = t.execute(&Predicate::and([])).unwrap();
        assert_eq!(out.rows.to_vec(), vec![0, 1, 2]);
        assert!(out.rows.is_complemented());
        assert_eq!(out.io, IoStats::default());
    }

    #[test]
    fn negation_and_out_of_alphabet_ranges() {
        let t = indexed(&[("a", 4, vec![0, 1, 2, 3, 1])]);
        // ¬(a ∈ [1,2]) = {0, 3}.
        let not_mid = Predicate::not(Predicate::range("a", 1, 2));
        assert_eq!(t.execute(&not_mid).unwrap().rows.to_vec(), vec![0, 3]);
        // A range entirely outside the alphabet matches nothing; its
        // negation matches everything.
        let beyond = Predicate::range("a", 9, 12);
        assert!(t.execute(&beyond).unwrap().rows.is_empty());
        assert_eq!(
            t.execute(&Predicate::not(beyond))
                .unwrap()
                .rows
                .cardinality(),
            5
        );
        // A range straddling the alphabet edge is clamped.
        let straddle = Predicate::range("a", 2, 40);
        assert_eq!(t.execute(&straddle).unwrap().rows.to_vec(), vec![2, 3]);
    }

    #[test]
    fn empty_table_executes_without_hints() {
        // Regression: the uniformity fallback used clamp(1, 0) on n == 0,
        // which panics. Hint-less indexes over an empty table must plan
        // and execute to the empty result instead.
        let t = IndexedTable::from_columns(vec![IndexedColumn {
            name: "a".into(),
            sigma: 4,
            index: Box::new(NoHintIndex(ScanIndex {
                data: vec![],
                sigma: 4,
            })),
        }]);
        let out = t.execute(&Predicate::range("a", 1, 2)).unwrap();
        assert!(out.rows.is_empty());
        // And the fallback estimate is exercised on a non-empty table.
        let t2 = IndexedTable::from_columns(vec![IndexedColumn {
            name: "a".into(),
            sigma: 4,
            index: Box::new(NoHintIndex(ScanIndex {
                data: vec![0, 1, 2, 3, 1, 2],
                sigma: 4,
            })),
        }]);
        let q = Predicate::range("a", 1, 2).normalize().unwrap();
        assert_eq!(t2.estimate_condition(&q.conditions[0]).unwrap(), 3);
        assert_eq!(
            t2.execute_conjunctive(&q).unwrap().rows.to_vec(),
            vec![1, 2, 4, 5]
        );
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let t = indexed(&[("a", 2, vec![0, 1])]);
        let err = t.execute(&Predicate::point("missing", 0)).unwrap_err();
        assert_eq!(err, QueryError::UnknownAttribute("missing".into()));
    }

    /// An index whose reads fail with a scripted [`psi_api::ReadError`]
    /// until `healthy` flips — the unit-level stand-in for a store whose
    /// verified fetches detect corruption.
    struct FailingIndex {
        inner: ScanIndex,
        error: psi_api::ReadError,
        healthy: std::sync::atomic::AtomicBool,
    }

    impl SecondaryIndex for FailingIndex {
        fn len(&self) -> u64 {
            self.inner.len()
        }
        fn sigma(&self) -> Symbol {
            self.inner.sigma()
        }
        fn space_bits(&self) -> u64 {
            0
        }
        fn query(&self, lo: Symbol, hi: Symbol, io: &IoSession) -> RidSet {
            self.inner.query(lo, hi, io)
        }
        fn try_query(
            &self,
            lo: Symbol,
            hi: Symbol,
            io: &IoSession,
        ) -> Result<RidSet, psi_api::ReadError> {
            if self.healthy.load(std::sync::atomic::Ordering::Relaxed) {
                Ok(self.inner.query(lo, hi, io))
            } else {
                Err(self.error.clone())
            }
        }
    }

    fn failing_table(class: ErrorClass) -> (IndexedTable, Vec<Symbol>, Vec<Symbol>) {
        let data_a: Vec<Symbol> = vec![0, 1, 2, 3, 1, 2, 0, 1];
        let data_b: Vec<Symbol> = vec![2, 2, 1, 0, 0, 2, 1, 2];
        let table = IndexedTable::from_columns(vec![
            IndexedColumn {
                name: "a".into(),
                sigma: 4,
                index: Box::new(FailingIndex {
                    inner: ScanIndex {
                        data: data_a.clone(),
                        sigma: 4,
                    },
                    error: psi_api::ReadError {
                        class,
                        extent: psi_io::ExtentId(7),
                        block: 3,
                        message: "scripted fault".into(),
                    },
                    healthy: std::sync::atomic::AtomicBool::new(false),
                }),
            },
            IndexedColumn {
                name: "b".into(),
                sigma: 3,
                index: Box::new(ScanIndex {
                    data: data_b.clone(),
                    sigma: 3,
                }),
            },
        ]);
        (table, data_a, data_b)
    }

    #[test]
    fn corrupt_fetch_quarantines_and_degrades_to_scan() {
        let (mut t, data_a, _) = failing_table(ErrorClass::Corrupt);
        t.attach_column_data("a", data_a).unwrap();
        let q = Predicate::and([Predicate::range("a", 1, 2), Predicate::point("b", 2)])
            .normalize()
            .unwrap();
        let out = t.execute_conjunctive(&q).expect("degrades, not errors");
        assert_eq!(out.rows.to_vec(), vec![1, 5, 7]);
        assert_eq!(out.degraded, vec!["a".to_string()]);
        assert_eq!(t.quarantined_extents("a"), vec![7]);
        // The quarantine now reorders planning: the healthy "b" condition
        // filters first even though "a" estimates smaller.
        let out2 = t.execute_conjunctive(&q).unwrap();
        assert_eq!(out2.plan.order, vec![1, 0]);
        assert_eq!(out2.rows.to_vec(), vec![1, 5, 7]);
        assert_eq!(out2.degraded, vec!["a".to_string()]);
    }

    #[test]
    fn corrupt_fetch_without_sources_is_a_typed_error() {
        let (t, _, _) = failing_table(ErrorClass::Corrupt);
        let err = t.execute(&Predicate::point("a", 1)).unwrap_err();
        match err {
            QueryError::Read(e) => assert_eq!(e.class, ErrorClass::Corrupt),
            other => panic!("expected Read error, got {other:?}"),
        }
        // The extent was still quarantined; a later query hits the
        // quarantine first and reports the missing fallback.
        assert_eq!(t.quarantined_extents("a"), vec![7]);
        assert_eq!(
            t.execute(&Predicate::point("a", 1)).unwrap_err(),
            QueryError::Quarantined("a".into())
        );
    }

    #[test]
    fn transient_and_permanent_faults_propagate_without_quarantine() {
        for class in [ErrorClass::Transient, ErrorClass::Permanent] {
            let (mut t, data_a, _) = failing_table(class);
            t.attach_column_data("a", data_a).unwrap();
            let err = t.execute(&Predicate::point("a", 1)).unwrap_err();
            match err {
                QueryError::Read(e) => assert_eq!(e.class, class),
                other => panic!("expected Read error, got {other:?}"),
            }
            // Only corruption quarantines: these faults are not the
            // index's fault, so no degradation state is left behind.
            assert!(!t.is_quarantined("a"));
        }
    }

    #[test]
    fn rebuild_attribute_restores_the_index_path() {
        let (mut t, data_a, _) = failing_table(ErrorClass::Corrupt);
        t.attach_column_data("a", data_a.clone()).unwrap();
        let q = Predicate::range("a", 1, 2).normalize().unwrap();
        let degraded = t.execute_conjunctive(&q).unwrap();
        assert_eq!(degraded.degraded, vec!["a".to_string()]);
        assert!(t.is_quarantined("a"));
        t.rebuild_attribute("a", |symbols, sigma| {
            Box::new(ScanIndex {
                data: symbols.to_vec(),
                sigma,
            })
        })
        .unwrap();
        assert!(!t.is_quarantined("a"));
        let healthy = t.execute_conjunctive(&q).unwrap();
        assert_eq!(healthy.rows.to_vec(), degraded.rows.to_vec());
        assert!(healthy.degraded.is_empty());
        // Rebuilding an unknown attribute is typed.
        assert_eq!(
            t.rebuild_attribute("zzz", |s, sigma| Box::new(ScanIndex {
                data: s.to_vec(),
                sigma
            }))
            .unwrap_err(),
            QueryError::UnknownAttribute("zzz".into())
        );
    }

    #[test]
    fn trace_records_estimates_actuals_and_explain_renders() {
        let t = indexed(&[
            ("a", 4, vec![0, 1, 2, 3, 1, 2, 0, 1]),
            ("b", 3, vec![2, 2, 1, 0, 0, 2, 1, 2]),
        ]);
        let pred = Predicate::and([Predicate::range("a", 1, 2), Predicate::point("b", 2)]);
        let q = pred.normalize().unwrap();
        let out = t.execute_conjunctive(&q).unwrap();
        assert_eq!(out.trace.strategy, out.plan.strategy);
        assert_eq!(out.trace.conditions.len(), 2);
        for (k, &i) in out.plan.order.iter().enumerate() {
            let c = &out.trace.conditions[k];
            assert_eq!(c.attr, q.conditions[i].attr, "trace in execution order");
            assert_eq!(c.estimate, out.plan.estimates[k]);
            // ScanIndex hints are exact, so estimate == actual here.
            assert_eq!(c.actual, c.estimate);
            assert!(!c.degraded);
        }
        assert_eq!(out.trace.result_rows, out.rows.cardinality());
        assert!((out.trace.worst_misestimate() - 1.0).abs() < 1e-9);
        let text = t.explain(&pred).unwrap();
        assert!(text.contains("result: 3 row(s)"), "got: {text}");

        // A degraded condition is flagged in its trace entry.
        let (mut ft, data_a, _) = failing_table(ErrorClass::Corrupt);
        ft.attach_column_data("a", data_a).unwrap();
        let out = ft.execute_conjunctive(&q).unwrap();
        let a_trace = out
            .trace
            .conditions
            .iter()
            .find(|c| c.attr == "a")
            .expect("condition on a");
        assert!(a_trace.degraded);
    }

    #[test]
    fn quarantine_snapshot_lists_attrs_and_extents_sorted() {
        let t = indexed(&[("a", 4, vec![0, 1, 2, 3]), ("b", 3, vec![2, 2, 1, 0])]);
        assert!(t.quarantine_snapshot().is_empty());
        t.quarantine_extent("b", 9).unwrap();
        t.quarantine_extent("a", 5).unwrap();
        t.quarantine_extent("a", 2).unwrap();
        t.quarantine_extent("a", 5).unwrap(); // duplicate: no new event
        assert_eq!(
            t.quarantine_snapshot(),
            vec![("a".to_string(), vec![2, 5]), ("b".to_string(), vec![9]),]
        );
    }

    #[test]
    fn planner_orders_by_selectivity() {
        // Condition 0 is broad (6/8 rows), condition 1 selective (1/8).
        let t = indexed(&[
            ("broad", 2, vec![0, 0, 0, 0, 1, 0, 0, 1]),
            ("narrow", 8, vec![0, 1, 2, 3, 4, 5, 6, 7]),
        ]);
        let q = Predicate::and([Predicate::point("broad", 0), Predicate::point("narrow", 3)])
            .normalize()
            .unwrap();
        let plan = t.plan_query(&q).unwrap();
        assert_eq!(plan.order, vec![1, 0]);
        assert_eq!(plan.estimates, vec![1, 6]);
        // 1 · PROBE_RATIO > 6, so the gap is not wide enough to probe.
        assert_eq!(plan.strategy, CombineStrategy::Gallop);
        assert_eq!(t.execute_conjunctive(&q).unwrap().rows.to_vec(), vec![3u64]);
    }
}
