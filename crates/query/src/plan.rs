//! The cost-based conjunction planner.
//!
//! Every strategy issues the *same* per-attribute index queries (the same
//! covers, hence identical simulated I/O — asserted by the replay tests);
//! what the planner chooses is the CPU-side combine and, crucially, the
//! *order*: intersecting in ascending estimated-cardinality order keeps
//! every intermediate result no larger than the smallest input, so the
//! galloping leapfrog jumps the broad streams instead of decoding them.
//!
//! Estimates come from [`psi_api::SecondaryIndex::cardinality_hint`] —
//! prefix counts and catalog directories read *before any payload
//! decode*. Structures without such metadata fall back to a uniformity
//! assumption; both paths are exercised by the differential suite.

/// How the per-condition results are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombineStrategy {
    /// Pairwise galloping intersection in plan order
    /// ([`psi_api::RidSet::intersect`]): each round leapfrogs the larger
    /// stream through its skip directory. The general-purpose choice.
    Gallop,
    /// Semi-join: materialize the smallest result, then filter it by
    /// `O(lg z)` [`psi_api::RidSet::contains`] probes against every other
    /// result — no intermediate re-encoding. Wins when one condition is
    /// far more selective than the rest.
    Probe,
    /// Linear k-way co-scan of all logical streams. When every condition
    /// is non-selective the results are dense (mostly complement
    /// representations), no gallop can jump, and the branch-free linear
    /// scan is the cheapest way through.
    Scan,
}

/// Probe is chosen when the smallest estimate times this factor still
/// undercuts the second smallest: the semi-join does `z_min` directory
/// probes per remaining condition, against the gallop's cost of walking
/// (and re-encoding) intermediate results of size up to `z_second`.
pub const PROBE_RATIO: u64 = 8;

/// Scan is chosen when even the smallest estimate exceeds this fraction
/// of the universe (numerator/denominator): every input is dense, so
/// leapfrogging degenerates to stepping and the linear co-scan wins.
pub const SCAN_MIN_FRACTION: (u64, u64) = (1, 2);

/// An execution plan for one conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Condition indices in execution order (ascending estimate).
    pub order: Vec<usize>,
    /// Estimated result cardinality per condition, parallel to `order`.
    pub estimates: Vec<u64>,
    /// The combine strategy.
    pub strategy: CombineStrategy,
}

/// Plans a conjunction over a universe of `n` rows from per-condition
/// cardinality estimates (`estimates[i]` for condition `i`, in predicate
/// order). Pure metadata: no index is touched.
pub fn plan_conjunction(n: u64, estimates: &[u64]) -> Plan {
    let mut order: Vec<usize> = (0..estimates.len()).collect();
    order.sort_by_key(|&i| (estimates[i], i));
    let ordered: Vec<u64> = order.iter().map(|&i| estimates[i]).collect();
    let strategy = match ordered.as_slice() {
        [] | [_] => CombineStrategy::Gallop,
        [z_min, rest @ ..] => {
            let (num, den) = SCAN_MIN_FRACTION;
            if z_min.saturating_mul(den) > n.saturating_mul(num) {
                CombineStrategy::Scan
            } else if z_min.saturating_mul(PROBE_RATIO) <= rest[0] {
                CombineStrategy::Probe
            } else {
                CombineStrategy::Gallop
            }
        }
    };
    Plan {
        order,
        estimates: ordered,
        strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_ascending_and_stable() {
        let p = plan_conjunction(1000, &[500, 20, 20, 100]);
        assert_eq!(p.order, vec![1, 2, 3, 0]);
        assert_eq!(p.estimates, vec![20, 20, 100, 500]);
    }

    #[test]
    fn selective_outlier_probes() {
        let p = plan_conjunction(100_000, &[40_000, 10, 35_000]);
        assert_eq!(p.strategy, CombineStrategy::Probe);
        assert_eq!(p.order[0], 1);
    }

    #[test]
    fn dense_everything_scans() {
        let p = plan_conjunction(1000, &[800, 900, 700]);
        assert_eq!(p.strategy, CombineStrategy::Scan);
    }

    #[test]
    fn comparable_selectivities_gallop() {
        let p = plan_conjunction(100_000, &[400, 300, 900]);
        assert_eq!(p.strategy, CombineStrategy::Gallop);
        let single = plan_conjunction(100, &[90]);
        assert_eq!(single.strategy, CombineStrategy::Gallop);
        assert!(plan_conjunction(10, &[]).order.is_empty());
    }
}
