//! The query executor's always-on instruments, resolved once from the
//! global [`psi_obs::Registry`].
//!
//! Recording happens once per query (and once per quarantine event) —
//! never inside the per-condition decode loops, which stay on the
//! non-atomic per-session accounting.

use std::sync::{Arc, OnceLock};

use psi_obs::{Counter, Histogram, Registry};

/// Shared instrument handles for the query layer.
#[derive(Debug)]
pub struct QueryMetrics {
    /// `query/executed` — conjunctive executions completed (any outcome
    /// that returned rows, including degraded ones).
    pub executed: Arc<Counter>,
    /// `query/latency_ns` — wall-clock execution latency per query.
    pub latency_ns: Arc<Histogram>,
    /// `query/rows` — result cardinality per query.
    pub rows: Arc<Histogram>,
    /// `query/degraded` — executions where at least one condition fell
    /// back to the table scan.
    pub degraded: Arc<Counter>,
    /// `query/quarantine_events` — extents newly quarantined, whether by
    /// a mid-query corrupt fetch or an explicit
    /// [`crate::IndexedTable::quarantine_extent`] call (scrubber feed).
    pub quarantine_events: Arc<Counter>,
}

/// The crate's instrument handles, resolved once per process.
pub fn query_metrics() -> &'static QueryMetrics {
    static METRICS: OnceLock<QueryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        QueryMetrics {
            executed: r.counter("query/executed"),
            latency_ns: r.histogram("query/latency_ns"),
            rows: r.histogram("query/rows"),
            degraded: r.counter("query/degraded"),
            quarantine_events: r.counter("query/quarantine_events"),
        }
    })
}
