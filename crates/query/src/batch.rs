//! Multi-threaded batch execution of conjunctive queries.
//!
//! The per-query read path is shared-state (`&self` all the way down, see
//! `psi_api::SecondaryIndex`), so throughput over a batch of queries is a
//! scheduling problem, not a locking one. [`IndexedTable::execute_batch`]
//! runs a slice of normalized conjunctions on a scoped thread pool
//! (`std::thread::scope` — no extra dependencies, no detached threads):
//!
//! * the batch is **grouped by lead attribute** before being handed to
//!   the pool — queries whose most selective condition probes the same
//!   index run back to back, so on a pooled (file/mmap) backend their
//!   block fetches hit the same buffer-pool shards and frames instead of
//!   ping-ponging the clock across every index in the table;
//! * workers claim queries off a shared atomic cursor (work stealing in
//!   its simplest form), so a straggler query cannot idle the pool;
//! * results land in their input slots — the output is **identical, in
//!   order and in content, to running the queries sequentially**, which
//!   the workspace test `tests/concurrent_read.rs`
//!   (`batch_executor_matches_sequential_for_every_family`) pins for
//!   every index family.
//!
//! Per-query I/O accounting is untouched: each query still runs each of
//! its conditions under a fresh `psi_io::IoSession`, so a batched
//! query's reported cost equals its standalone cost exactly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::exec::{IndexedTable, QueryOutcome};
use crate::predicate::ConjunctiveQuery;
use crate::QueryError;

/// Execution order for a batch: query indices sorted (stably) so queries
/// sharing a lead attribute are adjacent. The lead attribute is the
/// attribute of the query's first condition — for planned executions the
/// planner probes every condition anyway, but the *first* condition is
/// known without planning and correlates with which index the query was
/// written against.
pub fn grouped_order(queries: &[ConjunctiveQuery]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..queries.len()).collect();
    order.sort_by(|&a, &b| {
        let lead = |i: usize| queries[i].conditions.first().map(|c| c.attr.as_str());
        lead(a).cmp(&lead(b))
    });
    order
}

impl IndexedTable {
    /// Runs one query with its failure contained to its own result: a
    /// typed error comes back as `Err`, and an unwind escaping the query
    /// (an index bug, or a read abort raised outside its catch frame) is
    /// caught and reported as [`QueryError::Panicked`] instead of killing
    /// the calling worker thread.
    fn settle_query(&self, query: &ConjunctiveQuery) -> Result<QueryOutcome, QueryError> {
        match catch_unwind(AssertUnwindSafe(|| self.execute_conjunctive(query))) {
            Ok(result) => result,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(QueryError::Panicked(msg))
            }
        }
    }

    /// Executes every query of `batch` and returns one settled result per
    /// query, in input order, using up to `threads` worker threads
    /// (clamped to the batch size; `0` means
    /// [`std::thread::available_parallelism`]).
    ///
    /// Failures stay in their own slot: a query that hits a pool-budget
    /// exhaustion, a failed block read, an unknown attribute — or even a
    /// panic inside an index implementation — yields `Err` in *its* slot
    /// while every sibling query still returns its correct rows. This is
    /// the batch entry point for callers (such as a network server) that
    /// must answer each request independently.
    pub fn execute_batch_settled(
        &self,
        batch: &[ConjunctiveQuery],
        threads: usize,
    ) -> Vec<Result<QueryOutcome, QueryError>> {
        let threads = match threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        }
        .min(batch.len().max(1));
        if threads <= 1 {
            // Same claim order as the parallel path attempts: pool
            // warmth and fetch counts must not depend on thread count.
            return batch.iter().map(|q| self.settle_query(q)).collect();
        }
        let order = grouped_order(batch);
        let cursor = AtomicUsize::new(0);
        let slots: Vec<OnceLock<Result<QueryOutcome, QueryError>>> =
            (0..batch.len()).map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&qi) = order.get(k) else { break };
                    let outcome = self.settle_query(&batch[qi]);
                    assert!(slots[qi].set(outcome).is_ok(), "slot written once");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled"))
            .collect()
    }

    /// Executes every query of `batch` and returns the outcomes in input
    /// order, using up to `threads` worker threads (clamped to the batch
    /// size; `0` means [`std::thread::available_parallelism`]).
    ///
    /// Results are bit-identical to calling
    /// [`IndexedTable::execute_conjunctive`] on each query in a loop —
    /// queries never observe each other — and each outcome's `io` is the
    /// same as its standalone cost. The whole batch is always attempted;
    /// on failure the first error *in input order* is returned. Callers
    /// that need the surviving sibling outcomes (one settled result per
    /// query) should use [`IndexedTable::execute_batch_settled`].
    pub fn execute_batch(
        &self,
        batch: &[ConjunctiveQuery],
        threads: usize,
    ) -> Result<Vec<QueryOutcome>, QueryError> {
        self.execute_batch_settled(batch, threads)
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use psi_api::{naive_query, RidSet, SecondaryIndex, Symbol};
    use psi_io::IoSession;

    struct ScanIndex {
        data: Vec<Symbol>,
        sigma: u32,
    }

    impl SecondaryIndex for ScanIndex {
        fn len(&self) -> u64 {
            self.data.len() as u64
        }
        fn sigma(&self) -> Symbol {
            self.sigma
        }
        fn space_bits(&self) -> u64 {
            0
        }
        fn query(&self, lo: Symbol, hi: Symbol, _io: &IoSession) -> RidSet {
            naive_query(&self.data, lo, hi)
        }
    }

    fn table() -> IndexedTable {
        let data_a: Vec<Symbol> = (0..512u32).map(|i| i % 7).collect();
        let data_b: Vec<Symbol> = (0..512u32).map(|i| (i * 31) % 13).collect();
        IndexedTable::from_columns(vec![
            crate::exec::IndexedColumn {
                name: "a".into(),
                sigma: 7,
                index: Box::new(ScanIndex {
                    data: data_a,
                    sigma: 7,
                }),
            },
            crate::exec::IndexedColumn {
                name: "b".into(),
                sigma: 13,
                index: Box::new(ScanIndex {
                    data: data_b,
                    sigma: 13,
                }),
            },
        ])
    }

    fn batch() -> Vec<ConjunctiveQuery> {
        let mut qs = Vec::new();
        for v in 0..7u32 {
            qs.push(Predicate::point("a", v).normalize().unwrap());
            qs.push(Predicate::point("b", v).normalize().unwrap());
            qs.push(
                Predicate::and([Predicate::point("a", v), Predicate::range("b", 0, 5)])
                    .normalize()
                    .unwrap(),
            );
        }
        qs
    }

    #[test]
    fn grouped_order_clusters_lead_attributes() {
        let qs = batch();
        let order = grouped_order(&qs);
        assert_eq!(order.len(), qs.len());
        // All "a"-lead queries come before all "b"-lead ones, and the
        // order is a permutation.
        let leads: Vec<&str> = order
            .iter()
            .map(|&i| qs[i].conditions[0].attr.as_str())
            .collect();
        let first_b = leads.iter().position(|&l| l == "b").unwrap();
        assert!(leads[..first_b].iter().all(|&l| l == "a"));
        assert!(leads[first_b..].iter().all(|&l| l == "b"));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..qs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn batch_matches_sequential_at_every_thread_count() {
        let t = table();
        let qs = batch();
        let sequential: Vec<_> = qs
            .iter()
            .map(|q| t.execute_conjunctive(q).unwrap())
            .collect();
        for threads in [1, 2, 3, 8, 0] {
            let parallel = t.execute_batch(&qs, threads).unwrap();
            assert_eq!(parallel.len(), sequential.len());
            for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
                assert_eq!(p.rows.to_vec(), s.rows.to_vec(), "query {i} rows");
                assert_eq!(p.io, s.io, "query {i} io");
                assert_eq!(p.plan.order, s.plan.order, "query {i} plan");
            }
        }
    }

    #[test]
    fn batch_surfaces_errors() {
        let t = table();
        let qs = vec![
            Predicate::point("a", 1).normalize().unwrap(),
            Predicate::point("missing", 1).normalize().unwrap(),
        ];
        let err = t.execute_batch(&qs, 2).unwrap_err();
        assert_eq!(err, QueryError::UnknownAttribute("missing".into()));
    }

    /// A panicking index implementation must not kill the worker thread
    /// or poison the batch: its query settles to `Err(Panicked)` and the
    /// sibling queries still return their correct rows — at every thread
    /// count.
    struct PanicIndex;

    impl SecondaryIndex for PanicIndex {
        fn len(&self) -> u64 {
            512
        }
        fn sigma(&self) -> Symbol {
            3
        }
        fn space_bits(&self) -> u64 {
            0
        }
        fn query(&self, _lo: Symbol, _hi: Symbol, _io: &IoSession) -> RidSet {
            panic!("boom: injected index bug")
        }
    }

    #[test]
    fn settled_batch_isolates_panics_to_their_slot() {
        let data_a: Vec<Symbol> = (0..512u32).map(|i| i % 7).collect();
        let t = IndexedTable::from_columns(vec![
            crate::exec::IndexedColumn {
                name: "a".into(),
                sigma: 7,
                index: Box::new(ScanIndex {
                    data: data_a.clone(),
                    sigma: 7,
                }),
            },
            crate::exec::IndexedColumn {
                name: "boom".into(),
                sigma: 3,
                index: Box::new(PanicIndex),
            },
        ]);
        let qs = vec![
            Predicate::point("a", 2).normalize().unwrap(),
            Predicate::point("boom", 1).normalize().unwrap(),
            Predicate::range("a", 3, 5).normalize().unwrap(),
        ];
        let direct_first = naive_query(&data_a, 2, 2).to_vec();
        let direct_last = naive_query(&data_a, 3, 5).to_vec();
        for threads in [1, 2, 3, 0] {
            let settled = t.execute_batch_settled(&qs, threads);
            assert_eq!(settled.len(), 3, "{threads} threads");
            let ok0 = settled[0].as_ref().expect("sibling before survives");
            assert_eq!(ok0.rows.to_vec(), direct_first, "{threads} threads");
            match &settled[1] {
                Err(QueryError::Panicked(msg)) => {
                    assert!(msg.contains("boom"), "payload preserved, got: {msg}")
                }
                other => panic!("expected Panicked, got {other:?}"),
            }
            let ok2 = settled[2].as_ref().expect("sibling after survives");
            assert_eq!(ok2.rows.to_vec(), direct_last, "{threads} threads");
        }
        // The aggregate API reports the first error in input order.
        let err = t.execute_batch(&qs, 2).unwrap_err();
        assert!(matches!(err, QueryError::Panicked(_)), "got {err:?}");
    }

    #[test]
    fn empty_batch_is_empty() {
        let t = table();
        assert!(t.execute_batch(&[], 4).unwrap().is_empty());
    }
}
