//! I/O-accounting invariants of the conjunctive executor.
//!
//! Every combine strategy consumes the same per-condition covers, so for
//! one predicate set all of them must report **identical** `IoSession`
//! block counts — the query-layer analogue of PR 2's forced-heap merge
//! replay. And because each condition runs under its own fresh session,
//! the executor's reported cost must equal the sum of the standalone
//! `query_measured` calls — which is how skip-directory lifts (charged by
//! the underlying indexes for large covers) are proven to be charged
//! through the conjunctive path too.

use psi_api::SecondaryIndex;
use psi_baselines::*;
use psi_core::*;
use psi_io::{IoConfig, IoStats};
use psi_query::{CombineStrategy, IndexedTable, Predicate};
use psi_workloads::{people_table, Column, Table};

type BuildFn = fn(&[u32], u32) -> Box<dyn SecondaryIndex>;

fn cfg() -> IoConfig {
    IoConfig::with_block_bits(1024)
}

fn families() -> Vec<(&'static str, BuildFn)> {
    vec![
        ("optimal", |s, sigma| {
            Box::new(OptimalIndex::build(s, sigma, cfg()))
        }),
        ("uniform_tree", |s, sigma| {
            Box::new(UniformTreeIndex::build(s, sigma, cfg()))
        }),
        ("position_list", |s, sigma| {
            Box::new(PositionListIndex::build(s, sigma, cfg()))
        }),
        ("compressed_scan", |s, sigma| {
            Box::new(CompressedScanIndex::build(s, sigma, cfg()))
        }),
        ("binned_w4", |s, sigma| {
            Box::new(BinnedBitmapIndex::build(s, sigma, 4, cfg()))
        }),
        ("multires_w4", |s, sigma| {
            Box::new(MultiResolutionIndex::build(s, sigma, 4, cfg()))
        }),
        ("range_encoded", |s, sigma| {
            Box::new(RangeEncodedIndex::build(s, sigma, cfg()))
        }),
    ]
}

/// All strategies and all orders charge the same blocks for the same
/// predicate set, and the total equals the sum of the standalone
/// per-condition queries.
#[test]
fn every_strategy_charges_identical_io() {
    let table = people_table(20_000, 7);
    let predicate = Predicate::and([
        Predicate::point("marital_status", 1),
        Predicate::not(Predicate::point("sex", 1)),
        Predicate::range("age", 30, 35),
    ]);
    let query = predicate.normalize().unwrap();
    for (name, build) in families() {
        let indexed = IndexedTable::build(&table, |s, sigma| build(s, sigma));
        let planned = indexed.plan_query(&query).unwrap();
        let reference = indexed
            .execute_forced(&query, &planned.order, CombineStrategy::Gallop)
            .unwrap();
        assert!(reference.io.reads > 0, "{name} charged nothing");
        let left_to_right: Vec<usize> = (0..query.len()).collect();
        let mut reversed = planned.order.clone();
        reversed.reverse();
        for strategy in [
            CombineStrategy::Gallop,
            CombineStrategy::Probe,
            CombineStrategy::Scan,
        ] {
            for order in [
                planned.order.clone(),
                left_to_right.clone(),
                reversed.clone(),
            ] {
                let got = indexed.execute_forced(&query, &order, strategy).unwrap();
                assert_eq!(
                    got.io, reference.io,
                    "{name} {strategy:?} {order:?}: strategies must charge \
                     identical I/O for identical covers"
                );
                assert_eq!(got.rows.to_vec(), reference.rows.to_vec());
            }
        }
        // The conjunctive cost is exactly the sum of the standalone
        // per-condition queries (each condition is its own operation).
        let mut standalone = IoStats::default();
        for cond in &query.conditions {
            let col = table.column(&cond.attr).unwrap();
            let idx = build(&col.data, col.sigma);
            let (_, stats) = idx.query_measured(cond.lo, cond.hi.min(col.sigma - 1));
            standalone = standalone.merged(&stats);
        }
        assert_eq!(
            reference.io, standalone,
            "{name}: conjunctive cost must equal the summed standalone queries"
        );
    }
}

/// Repeated conditions on one attribute collapse to their intersection
/// at normalize time, so the executed plan probes that attribute's index
/// once and charges exactly what the pre-intersected single-condition
/// predicate charges — never a second probe.
#[test]
fn collapsed_same_attribute_conditions_charge_single_probe_io() {
    let table = people_table(20_000, 7);
    let doubled = Predicate::and([
        Predicate::range("age", 28, 40),
        Predicate::point("sex", 0),
        Predicate::range("age", 30, 35),
    ]);
    let single = Predicate::and([Predicate::range("age", 30, 35), Predicate::point("sex", 0)]);
    let q = doubled.normalize().unwrap();
    assert_eq!(q.len(), 2, "same-attribute conditions must collapse");
    for (name, build) in families() {
        let indexed = IndexedTable::build(&table, |s, sigma| build(s, sigma));
        let got = indexed.execute(&doubled).unwrap();
        assert_eq!(got.rows.to_vec(), doubled.naive_rows(&table), "{name} rows");
        let want = indexed.execute(&single).unwrap();
        assert_eq!(
            got.io, want.io,
            "{name}: the collapsed plan must charge the single-condition cost"
        );
    }
    // A conjunction whose same-attribute conditions are disjoint merges
    // into one empty condition: answered without touching that index.
    let impossible = Predicate::and([
        Predicate::range("age", 20, 25),
        Predicate::range("age", 50, 60),
        Predicate::point("sex", 0),
    ]);
    let (indexed_name, build) = families().remove(0);
    let indexed = IndexedTable::build(&table, |s, sigma| build(s, sigma));
    let got = indexed.execute(&impossible).unwrap();
    assert!(
        got.rows.is_empty(),
        "{indexed_name}: disjoint ranges match nothing"
    );
    assert_eq!(got.rows.to_vec(), impossible.naive_rows(&table));
    let sex_only = Predicate::point("sex", 0);
    let sex_cost = indexed.execute(&sex_only).unwrap();
    assert_eq!(
        got.io, sex_cost.io,
        "the empty merged condition must charge nothing on top of the \
         surviving condition"
    );
}

/// Large single-cover conditions lift their persisted skip directory, and
/// those probe reads are charged through the conjunctive path: the
/// condition's bits read strictly exceed the verbatim payload (result
/// size), by exactly the directory read.
#[test]
fn skip_directory_probe_reads_are_charged() {
    use psi_bits::skip::SKIP_LIFT_MIN;
    // A hot value with ≥ SKIP_LIFT_MIN occurrences: its point query is a
    // single-cover verbatim copy that lifts the skip directory.
    let n = 12_000usize;
    let hot: Vec<u32> = (0..n)
        .map(|i| if i % 2 == 0 { 3 } else { (i % 3) as u32 })
        .collect();
    let other: Vec<u32> = (0..n).map(|i| (i % 5) as u32).collect();
    let table = Table {
        columns: vec![
            Column {
                name: "hot".into(),
                sigma: 4,
                data: hot.clone(),
            },
            Column {
                name: "other".into(),
                sigma: 5,
                data: other,
            },
        ],
    };
    let hot_index = CompressedScanIndex::build(&hot, 4, cfg());
    let (hot_result, hot_stats) = hot_index.query_measured(3, 3);
    assert!(
        hot_result.cardinality() >= SKIP_LIFT_MIN,
        "hot value too small to lift: {}",
        hot_result.cardinality()
    );
    assert!(
        hot_stats.bits_read > hot_result.size_bits(),
        "the lifted skip directory must be charged on top of the verbatim \
         payload ({} bits read vs {} payload)",
        hot_stats.bits_read,
        hot_result.size_bits()
    );
    // The same charge flows through the conjunctive executor.
    let indexed = IndexedTable::build(&table, |s, sigma| {
        Box::new(CompressedScanIndex::build(s, sigma, cfg()))
    });
    let predicate = Predicate::and([Predicate::point("hot", 3), Predicate::range("other", 1, 2)]);
    let outcome = indexed.execute(&predicate).unwrap();
    let other_index =
        CompressedScanIndex::build(table.column("other").unwrap().data.as_slice(), 5, cfg());
    let (_, other_stats) = other_index.query_measured(1, 2);
    assert_eq!(outcome.io, hot_stats.merged(&other_stats));
    assert_eq!(outcome.rows.to_vec(), predicate.naive_rows(&table));
}

/// The occupancy block-skip kernels are CPU-only: they consult occupancy
/// words that already travel with the (charged) skip-directory lift, so
/// toggling them must not change a single simulated I/O charge — or row
/// — anywhere on the engine path, for any family or strategy.
#[test]
fn block_skip_toggle_never_changes_charged_io() {
    let table = people_table(20_000, 7);
    let predicate = Predicate::and([
        Predicate::point("marital_status", 1),
        Predicate::not(Predicate::point("sex", 1)),
        Predicate::range("age", 30, 35),
    ]);
    for (name, build) in families() {
        let indexed = IndexedTable::build(&table, |s, sigma| build(s, sigma));
        psi_bits::kernel::set_block_skip(true);
        let fast = indexed.execute(&predicate).unwrap();
        psi_bits::kernel::set_block_skip(false);
        let scalar = indexed.execute(&predicate).unwrap();
        psi_bits::kernel::set_block_skip(true);
        assert_eq!(
            fast.io, scalar.io,
            "{name}: block skipping must leave the simulated I/O bit-identical"
        );
        assert_eq!(fast.rows.to_vec(), scalar.rows.to_vec(), "{name} rows");
        assert_eq!(fast.rows.to_vec(), predicate.naive_rows(&table), "{name}");
    }
}

/// The planner's estimates agree with the executed cardinalities for
/// hint-bearing indexes (exact counts), so ordering really is by true
/// selectivity on the engine path.
#[test]
fn estimates_are_exact_for_hint_bearing_indexes() {
    let table = people_table(8_000, 21);
    let indexed = IndexedTable::build(&table, |s, sigma| {
        Box::new(OptimalIndex::build(s, sigma, cfg()))
    });
    let predicate = Predicate::and([
        Predicate::point("sex", 0),
        Predicate::range("age", 30, 35),
        Predicate::point("marital_status", 2),
    ]);
    let query = predicate.normalize().unwrap();
    let plan = indexed.plan_query(&query).unwrap();
    // Each estimate equals the naive per-condition count.
    for (k, &i) in plan.order.iter().enumerate() {
        let cond = &query.conditions[i];
        let col = table.column(&cond.attr).unwrap();
        let true_z = col
            .data
            .iter()
            .filter(|&&v| (cond.lo..=cond.hi).contains(&v))
            .count() as u64;
        assert_eq!(plan.estimates[k], true_z, "estimate for {}", cond.attr);
    }
    // And the order is ascending.
    assert!(plan.estimates.windows(2).all(|w| w[0] <= w[1]));
}
