//! Workload-replay differential oracle for the conjunctive query engine.
//!
//! Random multi-attribute tables and random conjunctive predicates
//! (points, ranges, negations) are replayed against **every index
//! family** in the workspace and **every planner branch** — the
//! automatically planned execution plus every `(strategy, order)`
//! combination forced through [`IndexedTable::execute_forced`] — and
//! each output is pinned to the [`Predicate::naive_rows`] full scan.
//! This is the harness that makes future planner changes safe: any
//! branch that diverges from the brute-force answer on any generated
//! workload fails here with the generating seed printed.

use proptest::prelude::*;
use psi_api::SecondaryIndex;
use psi_baselines::*;
use psi_core::*;
use psi_io::IoConfig;
use psi_query::{CombineStrategy, IndexedTable, Predicate};
use psi_workloads::{ColumnSpec, Dist, Table};
use rand::prelude::*;
use rand::rngs::StdRng;

type BuildFn = fn(&[u32], u32) -> Box<dyn SecondaryIndex>;

fn cfg() -> IoConfig {
    IoConfig::with_block_bits(512)
}

/// Every index family in the workspace, behind one build signature.
fn builders() -> Vec<(&'static str, BuildFn)> {
    vec![
        ("optimal", |s, sigma| {
            Box::new(OptimalIndex::build(s, sigma, cfg()))
        }),
        ("uniform_tree", |s, sigma| {
            Box::new(UniformTreeIndex::build(s, sigma, cfg()))
        }),
        ("semi_dynamic", |s, sigma| {
            Box::new(SemiDynamicIndex::build(s, sigma, cfg()))
        }),
        ("fully_dynamic", |s, sigma| {
            Box::new(FullyDynamicIndex::build(s, sigma, cfg()))
        }),
        ("buffered_bitmap", |s, sigma| {
            Box::new(BufferedBitmapIndex::build(s, sigma, cfg()))
        }),
        ("position_list", |s, sigma| {
            Box::new(PositionListIndex::build(s, sigma, cfg()))
        }),
        ("uncompressed", |s, sigma| {
            Box::new(UncompressedBitmapIndex::build(s, sigma, cfg()))
        }),
        ("compressed_scan", |s, sigma| {
            Box::new(CompressedScanIndex::build(s, sigma, cfg()))
        }),
        ("binned_w4", |s, sigma| {
            Box::new(BinnedBitmapIndex::build(s, sigma, 4, cfg()))
        }),
        ("multires_w4", |s, sigma| {
            Box::new(MultiResolutionIndex::build(s, sigma, 4, cfg()))
        }),
        ("range_encoded", |s, sigma| {
            Box::new(RangeEncodedIndex::build(s, sigma, cfg()))
        }),
        ("interval_encoded", |s, sigma| {
            Box::new(IntervalEncodedIndex::build(s, sigma, cfg()))
        }),
    ]
}

/// Derives a random table (2–4 columns, mixed distributions) from a seed.
fn random_table(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_cols = rng.gen_range(2..=4usize);
    let specs: Vec<ColumnSpec> = (0..num_cols)
        .map(|i| ColumnSpec {
            name: format!("c{i}"),
            sigma: rng.gen_range(2..12),
            dist: match rng.gen_range(0..4u32) {
                0 => Dist::Uniform,
                1 => Dist::Zipf(1.2),
                2 => Dist::Runs(5.0),
                _ => Dist::Sorted,
            },
        })
        .collect();
    Table::generate(n, &specs, rng.gen())
}

/// Derives a random conjunctive predicate over `table`'s columns:
/// point/range conditions, some negated, at least one condition total.
fn random_predicate(table: &Table, seed: u64) -> Predicate {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut terms = Vec::new();
    for col in &table.columns {
        if rng.gen_bool(0.3) && !terms.is_empty() {
            continue; // leave some columns unconstrained
        }
        let leaf = if rng.gen_bool(0.4) {
            Predicate::point(&col.name, rng.gen_range(0..col.sigma))
        } else {
            let lo = rng.gen_range(0..col.sigma);
            // Occasionally overshoot the alphabet to exercise clamping.
            let hi = (lo + rng.gen_range(0..col.sigma)).min(col.sigma + 1);
            Predicate::range(&col.name, lo, hi)
        };
        terms.push(if rng.gen_bool(0.3) {
            Predicate::not(leaf)
        } else {
            leaf
        });
    }
    // Sometimes constrain an already-constrained column again (positive
    // point or range, possibly disjoint from the first): exercises the
    // same-attribute intersection in `normalize`, including empty merges.
    if rng.gen_bool(0.4) {
        let col = &table.columns[rng.gen_range(0..table.columns.len())];
        let lo = rng.gen_range(0..col.sigma);
        let hi = if rng.gen_bool(0.4) {
            lo
        } else {
            (lo + rng.gen_range(0..col.sigma)).min(col.sigma - 1)
        };
        terms.push(Predicate::range(&col.name, lo, hi));
    }
    Predicate::and(terms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The oracle: planner output == naive full scan, for every index
    // family, the planned execution, and every forced (strategy, order)
    // replay — including the reversed (worst) order.
    #[test]
    fn every_index_and_every_branch_matches_the_full_scan(
        n in 30usize..160,
        table_seed in any::<u64>(),
        pred_seed in any::<u64>(),
    ) {
        let table = random_table(n, table_seed);
        let predicate = random_predicate(&table, pred_seed);
        let want = predicate.naive_rows(&table);
        let query = predicate.normalize().unwrap();
        for (name, build) in builders() {
            let indexed = IndexedTable::build(&table, |s, sigma| build(s, sigma));
            let auto = indexed.execute(&predicate).unwrap();
            prop_assert_eq!(
                auto.rows.to_vec(),
                want.clone(),
                "{} auto ({:?}) diverged from the scan",
                name,
                auto.plan.strategy
            );
            prop_assert_eq!(auto.rows.cardinality() as usize, want.len());
            let planned_order = auto.plan.order.clone();
            let mut reversed = planned_order.clone();
            reversed.reverse();
            for strategy in [
                CombineStrategy::Gallop,
                CombineStrategy::Probe,
                CombineStrategy::Scan,
            ] {
                for order in [&planned_order, &reversed] {
                    let got = indexed.execute_forced(&query, order, strategy).unwrap();
                    prop_assert_eq!(
                        got.rows.to_vec(),
                        want.clone(),
                        "{} forced {:?} order {:?} diverged",
                        name,
                        strategy,
                        order
                    );
                }
            }
        }
    }

    // Single-condition queries reduce to the underlying index's answer,
    // negations to its complement — for every family.
    #[test]
    fn single_condition_reduces_to_the_index(
        n in 20usize..120,
        table_seed in any::<u64>(),
        lo in 0u32..8,
        width in 0u32..8,
        negate in any::<bool>(),
    ) {
        let table = random_table(n, table_seed);
        let col = &table.columns[0];
        let lo = lo.min(col.sigma - 1);
        let hi = (lo + width).min(col.sigma - 1);
        let leaf = Predicate::range(&col.name, lo, hi);
        let predicate = if negate { Predicate::not(leaf) } else { leaf };
        let want = predicate.naive_rows(&table);
        for (name, build) in builders() {
            let indexed = IndexedTable::build(&table, |s, sigma| build(s, sigma));
            let got = indexed.execute(&predicate).unwrap();
            prop_assert_eq!(got.rows.to_vec(), want.clone(), "{} diverged", name);
        }
    }
}

/// The paper's §1 example, pinned exactly: married men of age 33 on the
/// generated people table, across the whole index spectrum.
#[test]
fn married_men_aged_33_across_the_spectrum() {
    let table = psi_workloads::people_table(4000, 14);
    let predicate = Predicate::and([
        Predicate::point("marital_status", 1),
        Predicate::point("sex", 0),
        Predicate::point("age", 33),
    ]);
    let want = predicate.naive_rows(&table);
    assert_eq!(
        want,
        table.naive_conjunctive_query(&[("marital_status", 1, 1), ("sex", 0, 0), ("age", 33, 33)])
    );
    for (name, build) in builders() {
        let indexed = IndexedTable::build(&table, |s, sigma| build(s, sigma));
        let got = indexed.execute(&predicate).unwrap();
        assert_eq!(got.rows.to_vec(), want, "{name} diverged");
        assert!(got.io.reads > 0, "{name} charged no I/O");
    }
}
