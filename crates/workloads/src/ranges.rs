//! Range-query workload generation.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::Symbol;

/// An alphabet range query `[al, ar]` (inclusive, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeQuery {
    /// Left endpoint `al`.
    pub lo: Symbol,
    /// Right endpoint `ar ≥ al`.
    pub hi: Symbol,
}

impl RangeQuery {
    /// Number of characters in the range (`ℓ` in the paper's §1.2).
    pub fn width(&self) -> u32 {
        self.hi - self.lo + 1
    }

    /// Whether a symbol falls in the range.
    pub fn contains(&self, s: Symbol) -> bool {
        (self.lo..=self.hi).contains(&s)
    }

    /// The exact answer on a string, by brute-force scan (ground truth for
    /// tests and false-positive measurement).
    pub fn naive_answer(&self, symbols: &[Symbol]) -> Vec<u64> {
        symbols
            .iter()
            .enumerate()
            .filter(|(_, &s)| self.contains(s))
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// The answer cardinality `z` from per-character counts.
    pub fn cardinality(&self, counts: &[u64]) -> u64 {
        counts[self.lo as usize..=self.hi as usize].iter().sum()
    }
}

/// A random range of exactly `width` characters over `[0, sigma)`.
pub fn range_of_length(sigma: u32, width: u32, rng: &mut StdRng) -> RangeQuery {
    assert!(width >= 1 && width <= sigma);
    let lo = rng.gen_range(0..=sigma - width);
    RangeQuery {
        lo,
        hi: lo + width - 1,
    }
}

/// `count` random ranges whose answer cardinality is as close as possible
/// to `selectivity · n`, grown greedily from random starting characters.
///
/// Used by the selectivity-sweep experiments (E2, E10): given the
/// per-character counts of the indexed string, each query's `z` lands
/// within one character's count of the target.
pub fn ranges_with_selectivity(
    counts: &[u64],
    selectivity: f64,
    count: usize,
    seed: u64,
) -> Vec<RangeQuery> {
    assert!((0.0..=1.0).contains(&selectivity));
    let sigma = counts.len() as u32;
    assert!(sigma > 0);
    let n: u64 = counts.iter().sum();
    let target = (selectivity * n as f64) as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let lo = rng.gen_range(0..sigma);
            let mut hi = lo;
            let mut z = counts[lo as usize];
            while z < target && (hi + 1 < sigma || lo > 0) {
                // Grow to whichever side exists, preferring the right.
                if hi + 1 < sigma {
                    hi += 1;
                    z += counts[hi as usize];
                } else {
                    break;
                }
            }
            RangeQuery { lo, hi }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_and_contains() {
        let q = RangeQuery { lo: 3, hi: 7 };
        assert_eq!(q.width(), 5);
        assert!(q.contains(3) && q.contains(7) && q.contains(5));
        assert!(!q.contains(2) && !q.contains(8));
    }

    #[test]
    fn naive_answer_matches_manual() {
        let s = vec![0u32, 5, 3, 9, 5, 1];
        let q = RangeQuery { lo: 1, hi: 5 };
        assert_eq!(q.naive_answer(&s), vec![1, 2, 4, 5]);
        assert_eq!(q.cardinality(&[1, 1, 0, 1, 0, 2, 0, 0, 0, 1]), 4);
    }

    #[test]
    fn range_of_length_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let q = range_of_length(32, 5, &mut rng);
            assert_eq!(q.width(), 5);
            assert!(q.hi < 32);
        }
        let full = range_of_length(8, 8, &mut rng);
        assert_eq!((full.lo, full.hi), (0, 7));
    }

    #[test]
    fn selectivity_targets_are_approximately_met() {
        let counts = vec![100u64; 64]; // n = 6400, uniform
        let queries = ranges_with_selectivity(&counts, 0.25, 50, 42);
        for q in queries {
            let z = q.cardinality(&counts);
            // Target 1600; greedy growth may stop short at the boundary.
            assert!(z >= 100, "range should contain at least one character");
            assert!(z <= 1700, "overshoot bounded by one character, got {z}");
        }
    }

    #[test]
    fn selectivity_generation_is_deterministic() {
        let counts = vec![10u64; 100];
        assert_eq!(
            ranges_with_selectivity(&counts, 0.1, 20, 5),
            ranges_with_selectivity(&counts, 0.1, 20, 5)
        );
    }
}
