//! Deterministic workload generators for the `psi` experiments.
//!
//! The paper motivates secondary indexing with OLAP / scientific-data
//! workloads (§1): large append-mostly strings over moderate alphabets,
//! queried by alphabet ranges, often several indexes combined by RID
//! intersection. These generators produce the synthetic equivalents used by
//! the experiment harnesses (`DESIGN.md` per-experiment index):
//!
//! * [`uniform`] — every character equally likely (the worst case for
//!   compressed bitmaps, and the regime of the paper's §1.2 gap example);
//! * [`zipf`] — skewed frequencies with parameter `s` (entropy-adaptivity
//!   experiments, E11);
//! * [`runs`] — clustered values with geometric run lengths (low
//!   per-character gap entropy: sorted/clustered fact tables);
//! * [`sorted`] — fully sorted data (extreme clustering);
//! * [`Table`] — multi-attribute rows for the RID-intersection scenario
//!   (the paper's "married men of age 33" example, §1).
//!
//! All generators are deterministic in their seed.

#![warn(missing_docs)]

use rand::prelude::*;
use rand::rngs::StdRng;

mod ranges;
mod table;

pub use ranges::{range_of_length, ranges_with_selectivity, RangeQuery};
pub use table::{people_table, Column, ColumnSpec, Table};

/// Symbols are dense character codes in `[0, σ)`.
pub type Symbol = u32;

/// A distribution over characters, used by the generic generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Uniform over `[0, σ)`.
    Uniform,
    /// Zipf with exponent `s` (s = 0 degenerates to uniform).
    Zipf(f64),
    /// Uniform character choice, geometric run lengths with the given mean.
    Runs(f64),
    /// Non-decreasing characters (sorted string).
    Sorted,
}

/// Generates `n` symbols according to `dist` over alphabet `[0, sigma)`.
pub fn generate(dist: Dist, n: usize, sigma: u32, seed: u64) -> Vec<Symbol> {
    match dist {
        Dist::Uniform => uniform(n, sigma, seed),
        Dist::Zipf(s) => zipf(n, sigma, s, seed),
        Dist::Runs(mean) => runs(n, sigma, mean, seed),
        Dist::Sorted => sorted(n, sigma),
    }
}

/// `n` i.i.d. uniform symbols over `[0, sigma)`.
pub fn uniform(n: usize, sigma: u32, seed: u64) -> Vec<Symbol> {
    assert!(sigma > 0, "alphabet must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..sigma)).collect()
}

/// `n` i.i.d. Zipf(`s`) symbols: character `c` (0-indexed) has probability
/// proportional to `1/(c+1)^s`.
///
/// `s = 0` is uniform; larger `s` is more skewed. Sampling is by binary
/// search over the precomputed CDF, so generation is `O(n lg σ)`.
pub fn zipf(n: usize, sigma: u32, s: f64, seed: u64) -> Vec<Symbol> {
    assert!(sigma > 0, "alphabet must be non-empty");
    assert!(s >= 0.0, "zipf exponent must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cdf = Vec::with_capacity(sigma as usize);
    let mut acc = 0.0f64;
    for c in 0..sigma {
        acc += 1.0 / ((c + 1) as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let u = rng.gen::<f64>() * total;
            cdf.partition_point(|&p| p < u).min(sigma as usize - 1) as u32
        })
        .collect()
}

/// `n` symbols in runs: each run picks a uniform character and a
/// geometric length with mean `mean_run_len`.
///
/// Clustered data compresses far below the i.i.d. entropy because each
/// character's positions concentrate in few dense regions — the regime
/// where bitmap indexes shine in practice (paper refs 16 and 18).
pub fn runs(n: usize, sigma: u32, mean_run_len: f64, seed: u64) -> Vec<Symbol> {
    assert!(sigma > 0, "alphabet must be non-empty");
    assert!(mean_run_len >= 1.0, "mean run length must be >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let p = 1.0 / mean_run_len;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let c = rng.gen_range(0..sigma);
        // Geometric(p) with support {1, 2, ...}.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let len = (u.ln() / (1.0 - p).max(f64::MIN_POSITIVE).ln()).floor() as usize + 1;
        for _ in 0..len.min(n - out.len()) {
            out.push(c);
        }
    }
    out
}

/// A fully sorted string: character `c` occupies the `c`-th equal slice of
/// positions.
pub fn sorted(n: usize, sigma: u32) -> Vec<Symbol> {
    assert!(sigma > 0, "alphabet must be non-empty");
    (0..n)
        .map(|i| ((i as u64 * u64::from(sigma)) / n as u64) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_in_seed() {
        assert_eq!(uniform(1000, 16, 42), uniform(1000, 16, 42));
        assert_ne!(uniform(1000, 16, 42), uniform(1000, 16, 43));
        assert_eq!(zipf(1000, 16, 1.0, 7), zipf(1000, 16, 1.0, 7));
        assert_eq!(runs(1000, 16, 8.0, 7), runs(1000, 16, 8.0, 7));
    }

    #[test]
    fn symbols_stay_in_alphabet() {
        for dist in [
            Dist::Uniform,
            Dist::Zipf(1.5),
            Dist::Runs(16.0),
            Dist::Sorted,
        ] {
            let s = generate(dist, 5000, 37, 1);
            assert_eq!(s.len(), 5000);
            assert!(s.iter().all(|&c| c < 37), "{dist:?} escaped alphabet");
        }
    }

    #[test]
    fn uniform_is_roughly_balanced() {
        let s = uniform(100_000, 10, 3);
        let counts = psi_counts(&s, 10);
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 1_000.0,
                "count {c} far from expectation"
            );
        }
    }

    #[test]
    fn zipf_skew_orders_counts() {
        let s = zipf(100_000, 10, 1.5, 3);
        let counts = psi_counts(&s, 10);
        // Character 0 dominates and counts decay (allow noise at the tail).
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        assert!(counts[0] as f64 > 0.5 * 100_000.0 / 2.0);
    }

    #[test]
    fn zipf_zero_is_uniformish() {
        let s = zipf(100_000, 4, 0.0, 9);
        let counts = psi_counts(&s, 4);
        for &c in &counts {
            assert!((c as f64 - 25_000.0).abs() < 2_000.0);
        }
    }

    #[test]
    fn runs_have_expected_mean_length() {
        let s = runs(200_000, 64, 10.0, 11);
        let mut run_count = 1usize;
        for w in s.windows(2) {
            if w[0] != w[1] {
                run_count += 1;
            }
        }
        let mean = s.len() as f64 / run_count as f64;
        // Runs of the same character may merge, so the observed mean can
        // exceed 10 slightly; it must be far from 1 (i.i.d.).
        assert!(mean > 7.0 && mean < 14.0, "observed mean run length {mean}");
    }

    #[test]
    fn sorted_is_monotone_and_balanced() {
        let s = sorted(1000, 10);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        let counts = psi_counts(&s, 10);
        assert!(counts.iter().all(|&c| c == 100));
    }

    fn psi_counts(s: &[u32], sigma: u32) -> Vec<u64> {
        let mut counts = vec![0u64; sigma as usize];
        for &c in s {
            counts[c as usize] += 1;
        }
        counts
    }
}
