//! Multi-attribute tables for RID-intersection workloads.
//!
//! The paper's introductory example (§1): "in a database of people we may
//! want to find all married men of age 33", combining secondary indexes on
//! marital status, sex, and age. [`people_table`] generates exactly that
//! table; [`Table::generate`] builds arbitrary schemas.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::{generate, Dist, Symbol};

/// Schema entry for one generated column.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Attribute name (used in harness output).
    pub name: String,
    /// Alphabet size of the dictionary-encoded attribute.
    pub sigma: u32,
    /// Value distribution.
    pub dist: Dist,
}

/// A dictionary-encoded column: `n` symbols over `[0, sigma)`.
#[derive(Debug, Clone)]
pub struct Column {
    /// Attribute name.
    pub name: String,
    /// Alphabet size.
    pub sigma: u32,
    /// Row values.
    pub data: Vec<Symbol>,
}

/// A table of aligned columns (row `i` is `columns[*].data[i]`).
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's columns, all of equal length.
    pub columns: Vec<Column>,
}

impl Table {
    /// Generates a table of `n` rows from `specs`, deterministically in
    /// `seed` (each column gets an independent derived seed).
    pub fn generate(n: usize, specs: &[ColumnSpec], seed: u64) -> Table {
        let mut seeder = StdRng::seed_from_u64(seed);
        let columns = specs
            .iter()
            .map(|spec| Column {
                name: spec.name.clone(),
                sigma: spec.sigma,
                data: generate(spec.dist, n, spec.sigma, seeder.gen()),
            })
            .collect();
        Table { columns }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.data.len())
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Row ids matching conjunctive range conditions `(column, lo, hi)`,
    /// by brute-force scan — the ground truth for RID-intersection
    /// experiments.
    pub fn naive_conjunctive_query(&self, conditions: &[(&str, Symbol, Symbol)]) -> Vec<u64> {
        let cols: Vec<(&Column, Symbol, Symbol)> = conditions
            .iter()
            .map(|&(name, lo, hi)| {
                (
                    self.column(name)
                        .unwrap_or_else(|| panic!("no column {name}")),
                    lo,
                    hi,
                )
            })
            .collect();
        (0..self.rows())
            .filter(|&i| {
                cols.iter()
                    .all(|&(c, lo, hi)| (lo..=hi).contains(&c.data[i]))
            })
            .map(|i| i as u64)
            .collect()
    }
}

/// The paper's motivating "people" table: marital status (4 values,
/// skewed), sex (2 values, uniform), age (128 values, roughly bell-shaped
/// via averaging two uniforms).
pub fn people_table(n: usize, seed: u64) -> Table {
    let mut table = Table::generate(
        n,
        &[
            ColumnSpec {
                name: "marital_status".into(),
                sigma: 4,
                dist: Dist::Zipf(0.8),
            },
            ColumnSpec {
                name: "sex".into(),
                sigma: 2,
                dist: Dist::Uniform,
            },
            ColumnSpec {
                name: "age".into(),
                sigma: 128,
                dist: Dist::Uniform,
            },
        ],
        seed,
    );
    // Reshape age into a triangular distribution (sum of two uniforms over
    // [0, 64)), which is closer to a demographic pyramid than uniform.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA9E);
    if let Some(age) = table.columns.iter_mut().find(|c| c.name == "age") {
        for v in &mut age.data {
            let a = rng.gen_range(0..64u32);
            let b = rng.gen_range(0..64u32);
            *v = a + b;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_table_shape() {
        let t = people_table(1000, 1);
        assert_eq!(t.rows(), 1000);
        assert_eq!(t.columns.len(), 3);
        assert!(t.column("age").is_some());
        assert!(t.column("salary").is_none());
        for c in &t.columns {
            assert!(
                c.data.iter().all(|&v| v < c.sigma),
                "column {} escaped alphabet",
                c.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = people_table(500, 9);
        let b = people_table(500, 9);
        for (ca, cb) in a.columns.iter().zip(&b.columns) {
            assert_eq!(ca.data, cb.data);
        }
    }

    #[test]
    fn naive_conjunctive_query_intersects() {
        let t = Table {
            columns: vec![
                Column {
                    name: "x".into(),
                    sigma: 4,
                    data: vec![0, 1, 2, 3, 1],
                },
                Column {
                    name: "y".into(),
                    sigma: 4,
                    data: vec![3, 2, 1, 0, 2],
                },
            ],
        };
        let hits = t.naive_conjunctive_query(&[("x", 1, 2), ("y", 2, 3)]);
        assert_eq!(hits, vec![1, 4]);
        // Empty condition list matches everything.
        assert_eq!(t.naive_conjunctive_query(&[]).len(), 5);
    }

    #[test]
    fn age_distribution_is_centered() {
        let t = people_table(50_000, 3);
        let age = t.column("age").unwrap();
        let mean: f64 = age.data.iter().map(|&v| v as f64).sum::<f64>() / age.data.len() as f64;
        assert!(
            (mean - 63.0).abs() < 3.0,
            "triangular mean ≈ 63, got {mean}"
        );
    }
}
