//! Read-path fault injection across the whole index spectrum.
//!
//! Every index family is saved to a real store file and reopened with a
//! [`FaultyStore`] spliced between the volume reader and the buffer pool
//! (through the production `open_with_wrap` hook, exactly where a flaky
//! disk would sit). Scripted schedules of transient faults, permanent
//! faults and torn reads are swept over point, range and conjunctive
//! queries: the invariant is **correct results or a typed error, never a
//! panic** — and when corruption degrades an attribute, quarantine plus
//! [`psi::IndexedTable::rebuild_attribute`] restores bit-identical
//! `RidSet`s.
//!
//! The proptests honor `PSI_READ_FAULT_SEED` (default 1) so CI can run a
//! seed matrix over different deterministic workloads.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use psi::baselines::*;
use psi::io::{Fault, FaultyStore, RetryPolicy};
use psi::query::{IndexedColumn, QueryError};
use psi::store::{open_with_wrap, Backend, OpenOptions, PersistIndex, StoreWrap};
use psi::workloads::{ColumnSpec, Dist, Table};
use psi::{
    naive_query, FullyDynamicIndex, IndexedTable, IoConfig, IoSession, OptimalIndex, Predicate,
    SecondaryIndex, SemiDynamicIndex, UniformTreeIndex,
};
use rand::prelude::*;
use rand::rngs::StdRng;

fn cfg() -> IoConfig {
    IoConfig::with_block_bits(512)
}

/// Workload seed mixed in from the environment (CI sweeps it).
fn env_seed() -> u64 {
    std::env::var("PSI_READ_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Payload backend from `PSI_READ_FAULT_BACKEND` (`file` / `mmap`; the
/// CI matrix sweeps both), falling back to the test's default.
fn env_backend(default: Backend) -> Backend {
    match std::env::var("PSI_READ_FAULT_BACKEND").as_deref() {
        Ok("mmap") => Backend::Mmap,
        Ok("file") => Backend::File,
        _ => default,
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("psi_read_faults").join(name);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

type BuildFn = fn(&[u32], u32) -> Box<dyn SecondaryIndex>;
type SaveFn = fn(&[u32], u32, &Path);
type OpenFn = fn(&Path, &OpenOptions, Option<StoreWrap>) -> Box<dyn SecondaryIndex>;

fn save_index<I: PersistIndex>(index: &I, path: &Path) {
    psi::store::save(index, path).expect("save index");
}

fn open_index<I: PersistIndex + SecondaryIndex + 'static>(
    path: &Path,
    opts: &OpenOptions,
    wrap: Option<StoreWrap>,
) -> Box<dyn SecondaryIndex> {
    Box::new(
        open_with_wrap::<I>(path, opts, wrap)
            .expect("open index")
            .index,
    )
}

/// Every index family, behind uniform build/save/open signatures.
fn families() -> Vec<(&'static str, BuildFn, SaveFn, OpenFn)> {
    vec![
        (
            "optimal",
            |s, g| Box::new(OptimalIndex::build(s, g, cfg())),
            |s, g, p| save_index(&OptimalIndex::build(s, g, cfg()), p),
            open_index::<OptimalIndex>,
        ),
        (
            "uniform_tree",
            |s, g| Box::new(UniformTreeIndex::build(s, g, cfg())),
            |s, g, p| save_index(&UniformTreeIndex::build(s, g, cfg()), p),
            open_index::<UniformTreeIndex>,
        ),
        (
            "semi_dynamic",
            |s, g| Box::new(SemiDynamicIndex::build(s, g, cfg())),
            |s, g, p| save_index(&SemiDynamicIndex::build(s, g, cfg()), p),
            open_index::<SemiDynamicIndex>,
        ),
        (
            "fully_dynamic",
            |s, g| Box::new(FullyDynamicIndex::build(s, g, cfg())),
            |s, g, p| save_index(&FullyDynamicIndex::build(s, g, cfg()), p),
            open_index::<FullyDynamicIndex>,
        ),
        (
            "buffered_bitmap",
            |s, g| Box::new(psi::BufferedBitmapIndex::build(s, g, cfg())),
            |s, g, p| save_index(&psi::BufferedBitmapIndex::build(s, g, cfg()), p),
            open_index::<psi::BufferedBitmapIndex>,
        ),
        (
            "position_list",
            |s, g| Box::new(PositionListIndex::build(s, g, cfg())),
            |s, g, p| save_index(&PositionListIndex::build(s, g, cfg()), p),
            open_index::<PositionListIndex>,
        ),
        (
            "uncompressed",
            |s, g| Box::new(UncompressedBitmapIndex::build(s, g, cfg())),
            |s, g, p| save_index(&UncompressedBitmapIndex::build(s, g, cfg()), p),
            open_index::<UncompressedBitmapIndex>,
        ),
        (
            "compressed_scan",
            |s, g| Box::new(CompressedScanIndex::build(s, g, cfg())),
            |s, g, p| save_index(&CompressedScanIndex::build(s, g, cfg()), p),
            open_index::<CompressedScanIndex>,
        ),
        (
            "binned_w4",
            |s, g| Box::new(BinnedBitmapIndex::build(s, g, 4, cfg())),
            |s, g, p| save_index(&BinnedBitmapIndex::build(s, g, 4, cfg()), p),
            open_index::<BinnedBitmapIndex>,
        ),
        (
            "multires_w4",
            |s, g| Box::new(MultiResolutionIndex::build(s, g, 4, cfg())),
            |s, g, p| save_index(&MultiResolutionIndex::build(s, g, 4, cfg()), p),
            open_index::<MultiResolutionIndex>,
        ),
        (
            "range_encoded",
            |s, g| Box::new(RangeEncodedIndex::build(s, g, cfg())),
            |s, g, p| save_index(&RangeEncodedIndex::build(s, g, cfg()), p),
            open_index::<RangeEncodedIndex>,
        ),
        (
            "interval_encoded",
            |s, g| Box::new(IntervalEncodedIndex::build(s, g, cfg())),
            |s, g, p| save_index(&IntervalEncodedIndex::build(s, g, cfg()), p),
            open_index::<IntervalEncodedIndex>,
        ),
    ]
}

/// Derives a random table (2–3 columns, mixed distributions) from a seed.
fn random_table(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_cols = rng.gen_range(2..=3usize);
    let specs: Vec<ColumnSpec> = (0..num_cols)
        .map(|i| ColumnSpec {
            name: format!("c{i}"),
            sigma: rng.gen_range(2..10),
            dist: match rng.gen_range(0..3u32) {
                0 => Dist::Uniform,
                1 => Dist::Zipf(1.2),
                _ => Dist::Runs(4.0),
            },
        })
        .collect();
    Table::generate(n, &specs, rng.gen())
}

/// Derives a random conjunctive predicate over `table`'s columns.
fn random_predicate(table: &Table, seed: u64) -> Predicate {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut terms = Vec::new();
    for col in &table.columns {
        let leaf = if rng.gen_bool(0.4) {
            Predicate::point(&col.name, rng.gen_range(0..col.sigma))
        } else {
            let lo = rng.gen_range(0..col.sigma);
            let hi = (lo + rng.gen_range(0..col.sigma)).min(col.sigma - 1);
            Predicate::range(&col.name, lo, hi)
        };
        terms.push(if rng.gen_bool(0.25) {
            Predicate::not(leaf)
        } else {
            leaf
        });
    }
    Predicate::and(terms)
}

/// Decodes a proptest-generated schedule into per-ordinal faults.
fn decode_schedule(raw: &[(u64, u8)]) -> Vec<(u64, Fault)> {
    raw.iter()
        .map(|&(ordinal, kind)| {
            let fault = match kind % 3 {
                0 => Fault::Transient,
                1 => Fault::Permanent,
                _ => Fault::ShortRead {
                    words: (ordinal % 7) as usize,
                },
            };
            (ordinal, fault)
        })
        .collect()
}

/// Opens every column of `table` from `dir` as family `name`, splicing a
/// fresh fault injector (with `schedule`) under each column's pool.
fn open_faulty_columns(
    dir: &Path,
    name: &str,
    table: &Table,
    open: OpenFn,
    opts: &OpenOptions,
    schedule: &[(u64, Fault)],
) -> IndexedTable {
    let columns = table
        .columns
        .iter()
        .map(|col| {
            let wrap_fn = |store: Arc<dyn psi::io::BlockStore>, _v: usize| {
                Arc::new(FaultyStore::new(store, schedule.iter().copied()))
                    as Arc<dyn psi::io::BlockStore>
            };
            let path = dir.join(format!("{name}_{}.psi", col.name));
            IndexedColumn {
                name: col.name.clone(),
                sigma: col.sigma,
                index: open(&path, opts, Some(&wrap_fn)),
            }
        })
        .collect();
    let mut indexed = IndexedTable::from_columns(columns);
    for col in &table.columns {
        indexed
            .attach_column_data(&col.name, col.data.clone())
            .expect("attach source");
    }
    indexed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The sweep: every family, point + range + conjunctive queries under
    // a scripted fault schedule. Outcomes are exactly correct rows (the
    // faults missed, were retried away, or were degraded around) or a
    // typed error — never a panic, never wrong rows.
    #[test]
    fn every_family_survives_scripted_read_faults(
        n in 24usize..80,
        table_seed in any::<u64>(),
        pred_seed in any::<u64>(),
        raw_schedule in proptest::collection::vec((0u64..28, 0u8..6), 0..6),
        with_retry in any::<bool>(),
    ) {
        let table = random_table(n, table_seed ^ env_seed());
        let predicate = random_predicate(&table, pred_seed);
        let want = predicate.naive_rows(&table);
        let schedule = decode_schedule(&raw_schedule);
        let opts = OpenOptions {
            backend: env_backend(Backend::File),
            pool_blocks: 64,
            // Zero-delay policy: injected flakes retry instantly, the
            // test never touches the wall clock.
            retry: with_retry.then_some(RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::ZERO,
            }),
            verify: true,
        };
        let dir = test_dir("sweep");
        for (name, build, save, open) in families() {
            for col in &table.columns {
                save(&col.data, col.sigma, &dir.join(format!("{name}_{}.psi", col.name)));
            }
            // Point and range queries straight on one faulty column.
            let col0 = &table.columns[0];
            let single = open_faulty_columns(&dir, name, &table, open, &opts, &schedule);
            let idx = &single.columns()[0].index;
            for (lo, hi) in [(0u32, 0u32), (0, col0.sigma - 1), (col0.sigma / 2, col0.sigma - 1)] {
                let io = IoSession::new();
                match idx.try_query(lo, hi, &io) {
                    Ok(rows) => prop_assert_eq!(
                        rows.to_vec(),
                        naive_query(&col0.data, lo, hi).to_vec(),
                        "{} [{},{}] wrong rows", name, lo, hi
                    ),
                    Err(e) => prop_assert!(
                        !e.message.is_empty(),
                        "{} [{},{}] untyped failure", name, lo, hi
                    ),
                }
            }
            // The conjunctive path, with degraded fallback available.
            let mut faulty = open_faulty_columns(&dir, name, &table, open, &opts, &schedule);
            match faulty.execute(&predicate) {
                Ok(out) => {
                    prop_assert_eq!(
                        out.rows.to_vec(), want.clone(),
                        "{} conjunctive wrong rows (degraded: {:?})", name, out.degraded
                    );
                    if !out.degraded.is_empty() {
                        // Quarantine + rebuild must restore the index
                        // path bit-identically.
                        for attr in out.degraded.clone() {
                            prop_assert!(faulty.is_quarantined(&attr), "{}: degraded attr not quarantined", name);
                            faulty.rebuild_attribute(&attr, build).expect("rebuild");
                            prop_assert!(!faulty.is_quarantined(&attr), "{}: rebuild left quarantine", name);
                        }
                        match faulty.execute(&predicate) {
                            Ok(after) => {
                                prop_assert_eq!(
                                    after.rows.to_vec(),
                                    out.rows.to_vec(),
                                    "{} post-rebuild rows",
                                    name
                                );
                            }
                            Err(QueryError::Read(_)) => {} // another scripted fault fired
                            Err(other) => prop_assert!(false, "{}: unexpected error {other:?}", name),
                        }
                    }
                }
                Err(QueryError::Read(e)) => prop_assert!(
                    !e.message.is_empty(),
                    "{} conjunctive untyped failure", name
                ),
                Err(other) => prop_assert!(false, "{}: unexpected error class {other:?}", name),
            }
        }
    }
}

/// A dense transient barrage with retry enabled is fully absorbed: every
/// family answers every grid query with the exact reference rows and no
/// error, because the per-fetch retry outlasts any single flake.
#[test]
fn retry_absorbs_transient_barrage_for_every_family() {
    let table = random_table(60, 77 ^ env_seed());
    let dir = test_dir("barrage");
    let schedule: Vec<(u64, Fault)> = (0..200).map(|i| (i * 2, Fault::Transient)).collect();
    let opts = OpenOptions {
        backend: env_backend(Backend::Mmap),
        pool_blocks: 64,
        retry: Some(RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::ZERO,
        }),
        verify: true,
    };
    for (name, _, save, open) in families() {
        for col in &table.columns {
            save(
                &col.data,
                col.sigma,
                &dir.join(format!("{name}_{}.psi", col.name)),
            );
        }
        let faulty = open_faulty_columns(&dir, name, &table, open, &opts, &schedule);
        for (ci, col) in table.columns.iter().enumerate() {
            let idx = &faulty.columns()[ci].index;
            let io = IoSession::new();
            let got = idx
                .try_query(0, col.sigma - 1, &io)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", col.name));
            assert_eq!(
                got.to_vec(),
                naive_query(&col.data, 0, col.sigma - 1).to_vec(),
                "{name}/{} full-range rows",
                col.name
            );
        }
    }
}
