//! Shared fixtures for the persistence suite.
//!
//! `persistence_save` builds every index family over fixed workloads
//! (including append/change/delete histories for the dynamic ones) and
//! saves one store file per family; `persistence_open` rebuilds the same
//! references in its own process, reopens the files, and replays the
//! cross-index consistency suite against them. CI runs the two test
//! binaries as separate invocations, so the reopen happens in a process
//! that never saw the built structures.

// Shared by two test binaries; each uses a different subset.
#![allow(dead_code)]

use std::path::PathBuf;

use psi::baselines::*;
use psi::store::PersistIndex;
use psi::{
    AppendIndex, BufferedBitmapIndex, DynamicIndex as _, FullyDynamicIndex, IoConfig, IoSession,
    OptimalIndex, SemiDynamicIndex, UniformTreeIndex,
};

/// Block size shared by every fixture (multiple blocks per structure at
/// the suite's n, so pooled reads are exercised block by block).
pub fn cfg() -> IoConfig {
    IoConfig::with_block_bits(1024)
}

/// Store directory: `PSI_PERSIST_DIR` when the driver pins one (the CI
/// persistence job does, so save and reopen run in different processes
/// against the same files), else a per-target temp dir.
pub fn suite_dir() -> PathBuf {
    let dir = match std::env::var("PSI_PERSIST_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("psi_persist"),
    };
    std::fs::create_dir_all(&dir).expect("create persist dir");
    dir
}

/// Path of one family's store file.
pub fn family_path(tag: &str) -> PathBuf {
    suite_dir().join(format!("{tag}.psi"))
}

/// The static base workload (heavy-character mix exercises the remap).
pub fn base_workload() -> (Vec<u32>, u32) {
    let sigma = 24u32;
    let mut s = psi::workloads::zipf(2400, sigma, 1.2, 41);
    s.extend(std::iter::repeat_n(5u32, 600)); // heavy character
    s.extend(psi::workloads::runs(600, sigma, 12.0, 43));
    (s, sigma)
}

/// The string the semi-dynamic fixture indexes after its append history.
pub fn semi_dynamic_workload() -> (Vec<u32>, u32) {
    let (mut s, sigma) = base_workload();
    s.extend(psi::workloads::zipf(900, sigma, 1.0, 47));
    (s, sigma)
}

/// The (∞-marked) string the fully-dynamic fixture indexes after its
/// change/delete history.
pub fn fully_dynamic_workload() -> (Vec<u32>, u32) {
    let (mut s, sigma) = base_workload();
    for pos in (0..s.len()).step_by(7) {
        s[pos] = sigma; // deleted: the ∞ marker
    }
    for pos in (0..s.len()).step_by(11) {
        s[pos] = (pos % sigma as usize) as u32;
    }
    (s, sigma)
}

pub fn build_optimal() -> OptimalIndex {
    let (s, sigma) = base_workload();
    OptimalIndex::build(&s, sigma, cfg())
}

pub fn build_uniform_tree() -> UniformTreeIndex {
    let (s, sigma) = base_workload();
    UniformTreeIndex::build(&s, sigma, cfg())
}

pub fn build_semi_dynamic() -> SemiDynamicIndex {
    let (s, sigma) = base_workload();
    let mut idx = SemiDynamicIndex::build(&s, sigma, cfg());
    let io = IoSession::untracked();
    for &c in &psi::workloads::zipf(900, sigma, 1.0, 47) {
        idx.append(c, &io);
    }
    idx
}

pub fn build_fully_dynamic() -> FullyDynamicIndex {
    let (s, sigma) = base_workload();
    let mut idx = FullyDynamicIndex::build(&s, sigma, cfg());
    let io = IoSession::untracked();
    for pos in (0..s.len() as u64).step_by(7) {
        idx.delete(pos, &io);
    }
    for pos in (0..s.len() as u64).step_by(11) {
        idx.change(pos, (pos % u64::from(sigma)) as u32, &io);
    }
    idx
}

pub fn build_buffered_bitmap() -> BufferedBitmapIndex {
    let (s, sigma) = base_workload();
    let n = s.len() as u64;
    let mut idx = BufferedBitmapIndex::build(&s, sigma, cfg());
    let io = IoSession::untracked();
    // Leave pending updates in the buffers: inserts past the end and
    // removals of existing positions.
    for i in 0..300u64 {
        idx.insert((i % u64::from(sigma)) as u32, n + i, &io);
    }
    for i in (0..600u64).step_by(13) {
        idx.remove(s[i as usize], i, &io);
    }
    idx
}

pub fn build_position_list() -> PositionListIndex {
    let (s, sigma) = base_workload();
    PositionListIndex::build(&s, sigma, cfg())
}

pub fn build_uncompressed() -> UncompressedBitmapIndex {
    let (s, sigma) = base_workload();
    UncompressedBitmapIndex::build(&s, sigma, cfg())
}

pub fn build_compressed_scan() -> CompressedScanIndex {
    let (s, sigma) = base_workload();
    CompressedScanIndex::build(&s, sigma, cfg())
}

pub fn build_binned() -> BinnedBitmapIndex {
    let (s, sigma) = base_workload();
    BinnedBitmapIndex::build(&s, sigma, 4, cfg())
}

pub fn build_multires() -> MultiResolutionIndex {
    let (s, sigma) = base_workload();
    MultiResolutionIndex::build(&s, sigma, 4, cfg())
}

pub fn build_range_encoded() -> RangeEncodedIndex {
    let (s, sigma) = base_workload();
    RangeEncodedIndex::build(&s, sigma, cfg())
}

pub fn build_interval_encoded() -> IntervalEncodedIndex {
    let (s, sigma) = base_workload();
    IntervalEncodedIndex::build(&s, sigma, cfg())
}

/// The conjunctive fixture: one optimal index per column of the people
/// table, saved as separate store files (`col_<name>.psi`).
pub fn conjunctive_table() -> psi::workloads::Table {
    psi::workloads::people_table(2500, 9)
}

/// Saves every family (and the conjunctive columns). Returns the tags.
pub fn save_all() -> Vec<&'static str> {
    fn one<I: PersistIndex>(index: &I) -> &'static str {
        let report = psi::store::save(index, family_path(I::TAG)).expect("save");
        assert!(report.file_bytes > 0);
        I::TAG
    }
    let mut tags = vec![
        one(&build_optimal()),
        one(&build_uniform_tree()),
        one(&build_semi_dynamic()),
        one(&build_fully_dynamic()),
        one(&build_buffered_bitmap()),
        one(&build_position_list()),
        one(&build_uncompressed()),
        one(&build_compressed_scan()),
        one(&build_binned()),
        one(&build_multires()),
        one(&build_range_encoded()),
        one(&build_interval_encoded()),
    ];
    assert_eq!(tags.len(), 12, "all twelve families persist");
    let table = conjunctive_table();
    for col in &table.columns {
        let idx = OptimalIndex::build(&col.data, col.sigma, cfg());
        psi::store::save(&idx, suite_dir().join(format!("col_{}.psi", col.name)))
            .expect("save column");
        tags.push("optimal");
    }
    tags
}

/// Ensures the store files exist (reopening in the same process when the
/// suite runs standalone; the CI job runs `persistence_save` first in a
/// separate process and pins `PSI_PERSIST_DIR`).
pub fn ensure_saved() {
    let missing = [
        "optimal",
        "uniform_tree",
        "semi_dynamic",
        "fully_dynamic",
        "buffered_bitmap",
        "position_list",
        "uncompressed",
        "compressed_scan",
        "binned",
        "multires",
        "range_encoded",
        "interval_encoded",
    ]
    .iter()
    .any(|tag| !family_path(tag).exists());
    if missing {
        save_all();
    }
}

/// Query grid shared by every replay: narrow, medium, wide and
/// complement-triggering ranges.
pub fn grid(sigma: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for lo in (0..sigma).step_by((sigma as usize / 6).max(1)) {
        for hi in [
            lo,
            (lo + 2).min(sigma - 1),
            (lo + 9).min(sigma - 1),
            sigma - 1,
        ] {
            if hi >= lo {
                out.push((lo, hi));
            }
        }
    }
    out
}
