//! Integration: every index family answers identically on shared
//! workloads — the paper's structures, all baselines, and the naive scan —
//! in static builds, after appends, after deletes, and through the
//! conjunctive query layer.

use psi::baselines::*;
use psi::{
    naive_query, AppendIndex, IoConfig, IoSession, OptimalIndex, Predicate, SecondaryIndex,
    UniformTreeIndex,
};

fn all_indexes(symbols: &[u32], sigma: u32) -> Vec<(&'static str, Box<dyn SecondaryIndex>)> {
    let cfg = IoConfig::with_block_bits(1024);
    vec![
        (
            "optimal",
            Box::new(OptimalIndex::build(symbols, sigma, cfg)),
        ),
        (
            "uniform_tree",
            Box::new(UniformTreeIndex::build(symbols, sigma, cfg)),
        ),
        (
            "position_list",
            Box::new(PositionListIndex::build(symbols, sigma, cfg)),
        ),
        (
            "uncompressed",
            Box::new(UncompressedBitmapIndex::build(symbols, sigma, cfg)),
        ),
        (
            "compressed_scan",
            Box::new(CompressedScanIndex::build(symbols, sigma, cfg)),
        ),
        (
            "binned_w4",
            Box::new(BinnedBitmapIndex::build(symbols, sigma, 4, cfg)),
        ),
        (
            "multires_w4",
            Box::new(MultiResolutionIndex::build(symbols, sigma, 4, cfg)),
        ),
        (
            "range_encoded",
            Box::new(RangeEncodedIndex::build(symbols, sigma, cfg)),
        ),
        (
            "interval_encoded",
            Box::new(IntervalEncodedIndex::build(symbols, sigma, cfg)),
        ),
        (
            "buffered_bitmap",
            Box::new(psi::BufferedBitmapIndex::build(symbols, sigma, cfg)),
        ),
        (
            "fully_dynamic",
            Box::new(psi::FullyDynamicIndex::build(symbols, sigma, cfg)),
        ),
    ]
}

fn check_workload(symbols: Vec<u32>, sigma: u32) {
    let indexes = all_indexes(&symbols, sigma);
    for (name, idx) in &indexes {
        assert_eq!(idx.len(), symbols.len() as u64, "{name} length");
        assert_eq!(idx.sigma(), sigma, "{name} sigma");
    }
    for lo in (0..sigma).step_by((sigma as usize / 5).max(1)) {
        for hi in [lo, (lo + 2).min(sigma - 1), sigma - 1] {
            if hi < lo {
                continue;
            }
            let want = naive_query(&symbols, lo, hi).to_vec();
            for (name, idx) in &indexes {
                let io = IoSession::new();
                let got = idx.query(lo, hi, &io).to_vec();
                assert_eq!(got, want, "{name} disagrees on [{lo}, {hi}]");
            }
        }
    }
}

#[test]
fn uniform_workload() {
    check_workload(psi::workloads::uniform(3000, 16, 1), 16);
}

#[test]
fn zipf_workload() {
    check_workload(psi::workloads::zipf(3000, 32, 1.3, 2), 32);
}

#[test]
fn clustered_workload() {
    check_workload(psi::workloads::runs(3000, 24, 20.0, 3), 24);
}

#[test]
fn sorted_workload() {
    check_workload(psi::workloads::sorted(2000, 16), 16);
}

#[test]
fn degenerate_single_char() {
    check_workload(vec![2u32; 500], 5);
}

#[test]
fn tiny_alphabets() {
    for sigma in 1..=4u32 {
        check_workload(psi::workloads::uniform(800, sigma, 7), sigma);
    }
}

/// Post-append states: every append-capable index, fed the same stream,
/// agrees with the static families rebuilt on the final string.
#[test]
fn post_append_consistency() {
    let sigma = 12u32;
    let initial = psi::workloads::uniform(1200, sigma, 31);
    let appends = psi::workloads::zipf(1300, sigma, 1.1, 32);
    let cfg = IoConfig::with_block_bits(1024);
    let io = IoSession::untracked();
    let mut dynamic: Vec<(&'static str, Box<dyn AppendIndex>)> = vec![
        (
            "semi_dynamic",
            Box::new(psi::SemiDynamicIndex::build(&initial, sigma, cfg)),
        ),
        (
            "fully_dynamic",
            Box::new(psi::FullyDynamicIndex::build(&initial, sigma, cfg)),
        ),
        (
            "buffered",
            Box::new(psi::BufferedIndex::build(&initial, sigma, cfg)),
        ),
    ];
    let mut full = initial.clone();
    for &c in &appends {
        for (_, idx) in dynamic.iter_mut() {
            idx.append(c, &io);
        }
        full.push(c);
    }
    let static_families = all_indexes(&full, sigma);
    for lo in (0..sigma).step_by(3) {
        for hi in [lo, (lo + 3).min(sigma - 1), sigma - 1] {
            let want = naive_query(&full, lo, hi).to_vec();
            for (name, idx) in &dynamic {
                let io = IoSession::new();
                assert_eq!(
                    idx.query(lo, hi, &io).to_vec(),
                    want,
                    "{name} post-append disagrees on [{lo}, {hi}]"
                );
            }
            for (name, idx) in &static_families {
                let io = IoSession::new();
                assert_eq!(
                    idx.query(lo, hi, &io).to_vec(),
                    want,
                    "{name} rebuilt-on-final disagrees on [{lo}, {hi}]"
                );
            }
        }
    }
}

/// Post-delete states: the fully dynamic index after deletions agrees
/// with the naive scan over the ∞-marked string and with a static
/// optimal index built over the extended (σ+1) alphabet where deleted
/// positions hold the marker.
#[test]
fn post_delete_consistency() {
    use psi::DynamicIndex as _;
    let sigma = 10u32;
    let mut current = psi::workloads::uniform(2000, sigma, 33);
    let cfg = IoConfig::with_block_bits(1024);
    let mut fd = psi::FullyDynamicIndex::build(&current, sigma, cfg);
    let io = IoSession::untracked();
    // Delete every 7th position, change every 11th.
    for pos in (0..current.len() as u64).step_by(7) {
        fd.delete(pos, &io);
        current[pos as usize] = sigma; // ∞ marker
    }
    for pos in (0..current.len() as u64).step_by(11) {
        let sym = (pos % u64::from(sigma)) as u32;
        fd.change(pos, sym, &io);
        current[pos as usize] = sym;
    }
    // Static oracle: the marked string over the σ+1 alphabet (queries
    // never include the marker character).
    let marked = OptimalIndex::build(&current, sigma + 1, cfg);
    for lo in 0..sigma {
        for hi in lo..sigma {
            let want = naive_query(&current, lo, hi).to_vec();
            let io_a = IoSession::new();
            assert_eq!(
                fd.query(lo, hi, &io_a).to_vec(),
                want,
                "fully_dynamic post-delete disagrees on [{lo}, {hi}]"
            );
            let io_b = IoSession::new();
            assert_eq!(
                marked.query(lo, hi, &io_b).to_vec(),
                want,
                "marked-alphabet optimal disagrees on [{lo}, {hi}]"
            );
        }
    }
}

/// The conjunctive path: every index family, wired through the query
/// layer, answers the same multi-attribute predicates as the table scan.
#[test]
fn conjunctive_path_consistency() {
    let table = psi::workloads::people_table(3000, 9);
    let predicates = [
        Predicate::and([
            Predicate::point("marital_status", 1),
            Predicate::point("sex", 0),
            Predicate::range("age", 30, 35),
        ]),
        Predicate::and([
            Predicate::not(Predicate::point("marital_status", 0)),
            Predicate::range("age", 0, 90),
        ]),
        Predicate::and([
            Predicate::range("age", 60, 127),
            Predicate::not(Predicate::range("age", 80, 127)),
            Predicate::point("sex", 1),
        ]),
    ];
    let cfg = IoConfig::with_block_bits(1024);
    type BuildFn = Box<dyn Fn(&[u32], u32) -> Box<dyn SecondaryIndex>>;
    let families: Vec<(&'static str, BuildFn)> = vec![
        (
            "optimal",
            Box::new(move |s, g| Box::new(OptimalIndex::build(s, g, cfg))),
        ),
        (
            "uniform_tree",
            Box::new(move |s, g| Box::new(UniformTreeIndex::build(s, g, cfg))),
        ),
        (
            "position_list",
            Box::new(move |s, g| Box::new(PositionListIndex::build(s, g, cfg))),
        ),
        (
            "uncompressed",
            Box::new(move |s, g| Box::new(UncompressedBitmapIndex::build(s, g, cfg))),
        ),
        (
            "compressed_scan",
            Box::new(move |s, g| Box::new(CompressedScanIndex::build(s, g, cfg))),
        ),
        (
            "binned_w4",
            Box::new(move |s, g| Box::new(BinnedBitmapIndex::build(s, g, 4, cfg))),
        ),
        (
            "multires_w4",
            Box::new(move |s, g| Box::new(MultiResolutionIndex::build(s, g, 4, cfg))),
        ),
        (
            "range_encoded",
            Box::new(move |s, g| Box::new(RangeEncodedIndex::build(s, g, cfg))),
        ),
        (
            "interval_encoded",
            Box::new(move |s, g| Box::new(IntervalEncodedIndex::build(s, g, cfg))),
        ),
        (
            "buffered_bitmap",
            Box::new(move |s, g| Box::new(psi::BufferedBitmapIndex::build(s, g, cfg))),
        ),
        (
            "fully_dynamic",
            Box::new(move |s, g| Box::new(psi::FullyDynamicIndex::build(s, g, cfg))),
        ),
    ];
    // Build each family once; the table never changes across predicates.
    for (name, build) in &families {
        let indexed = psi::IndexedTable::build(&table, |s, g| build(s, g));
        for predicate in &predicates {
            let want = predicate.naive_rows(&table);
            let got = indexed.execute(predicate).unwrap();
            assert_eq!(
                got.rows.to_vec(),
                want,
                "{name} conjunctive path disagrees on {predicate:?}"
            );
        }
    }
}
