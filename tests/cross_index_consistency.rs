//! Integration: every index family answers identically on shared
//! workloads — the paper's structures, all baselines, and the naive scan.

use psi::baselines::*;
use psi::{naive_query, IoConfig, IoSession, OptimalIndex, SecondaryIndex, UniformTreeIndex};

fn all_indexes(symbols: &[u32], sigma: u32) -> Vec<(&'static str, Box<dyn SecondaryIndex>)> {
    let cfg = IoConfig::with_block_bits(1024);
    vec![
        (
            "optimal",
            Box::new(OptimalIndex::build(symbols, sigma, cfg)),
        ),
        (
            "uniform_tree",
            Box::new(UniformTreeIndex::build(symbols, sigma, cfg)),
        ),
        (
            "position_list",
            Box::new(PositionListIndex::build(symbols, sigma, cfg)),
        ),
        (
            "uncompressed",
            Box::new(UncompressedBitmapIndex::build(symbols, sigma, cfg)),
        ),
        (
            "compressed_scan",
            Box::new(CompressedScanIndex::build(symbols, sigma, cfg)),
        ),
        (
            "binned_w4",
            Box::new(BinnedBitmapIndex::build(symbols, sigma, 4, cfg)),
        ),
        (
            "multires_w4",
            Box::new(MultiResolutionIndex::build(symbols, sigma, 4, cfg)),
        ),
        (
            "range_encoded",
            Box::new(RangeEncodedIndex::build(symbols, sigma, cfg)),
        ),
        (
            "interval_encoded",
            Box::new(IntervalEncodedIndex::build(symbols, sigma, cfg)),
        ),
        (
            "buffered_bitmap",
            Box::new(psi::BufferedBitmapIndex::build(symbols, sigma, cfg)),
        ),
        (
            "fully_dynamic",
            Box::new(psi::FullyDynamicIndex::build(symbols, sigma, cfg)),
        ),
    ]
}

fn check_workload(symbols: Vec<u32>, sigma: u32) {
    let indexes = all_indexes(&symbols, sigma);
    for (name, idx) in &indexes {
        assert_eq!(idx.len(), symbols.len() as u64, "{name} length");
        assert_eq!(idx.sigma(), sigma, "{name} sigma");
    }
    for lo in (0..sigma).step_by((sigma as usize / 5).max(1)) {
        for hi in [lo, (lo + 2).min(sigma - 1), sigma - 1] {
            if hi < lo {
                continue;
            }
            let want = naive_query(&symbols, lo, hi).to_vec();
            for (name, idx) in &indexes {
                let io = IoSession::new();
                let got = idx.query(lo, hi, &io).to_vec();
                assert_eq!(got, want, "{name} disagrees on [{lo}, {hi}]");
            }
        }
    }
}

#[test]
fn uniform_workload() {
    check_workload(psi::workloads::uniform(3000, 16, 1), 16);
}

#[test]
fn zipf_workload() {
    check_workload(psi::workloads::zipf(3000, 32, 1.3, 2), 32);
}

#[test]
fn clustered_workload() {
    check_workload(psi::workloads::runs(3000, 24, 20.0, 3), 24);
}

#[test]
fn sorted_workload() {
    check_workload(psi::workloads::sorted(2000, 16), 16);
}

#[test]
fn degenerate_single_char() {
    check_workload(vec![2u32; 500], 5);
}

#[test]
fn tiny_alphabets() {
    for sigma in 1..=4u32 {
        check_workload(psi::workloads::uniform(800, sigma, 7), sigma);
    }
}
