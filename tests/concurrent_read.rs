//! The concurrent read path, end to end: one opened (or built) index
//! shared by many query threads.
//!
//! Three properties are pinned here, each "asserted in a test, not just
//! the bench" (ISSUE 5):
//!
//! 1. **Cold-cache parity at every thread count.** On a fresh File/Mmap
//!    open, running a query workload split across 1, 2, 4 or 8 threads
//!    performs exactly the same real block fetches as the workload's
//!    distinct-block charge (the union of simulated charges, measured by
//!    replaying the same queries under one shared session). Racing
//!    threads never double-fetch (the shard lock makes the loser hit)
//!    and never skip a charge (sessions are per-query, deduplicating
//!    only within themselves).
//! 2. **Charge parity per query.** A query charges the same `IoStats`
//!    whether it runs alone, cold, warm, or while seven other threads
//!    race it — including the skip-directory lifts whose `OnceLock`
//!    lazy builds race on the same cold slot.
//! 3. **Determinism.** The batch executor returns bit-identical results
//!    to sequential execution for every index family.

use std::sync::Arc;

use psi::baselines::*;
use psi::store::{open, Backend, OpenOptions, PersistIndex};
use psi::{
    naive_query, IoConfig, IoSession, IoStats, OptimalIndex, Predicate, SecondaryIndex,
    UniformTreeIndex,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The fixed query workload: a mix of points, narrow and broad ranges.
fn workload(sigma: u32) -> Vec<(u32, u32)> {
    let mut qs = Vec::new();
    for i in 0..16u32 {
        let lo = (i * 37) % sigma;
        qs.push((lo, lo));
        qs.push((lo, (lo + 5).min(sigma - 1)));
        qs.push((lo / 2, (lo / 2 + sigma / 3).min(sigma - 1)));
    }
    qs
}

fn store_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("psi_concurrent_read");
    std::fs::create_dir_all(&dir).expect("store dir");
    dir
}

/// Distinct-block union charge of the workload: the same queries replayed
/// sequentially under **one** shared session, whose residency set
/// deduplicates across queries — exactly the set of blocks a cold pool
/// must fetch, however many threads later split the work.
fn union_charge<I: SecondaryIndex>(index: &I, queries: &[(u32, u32)]) -> u64 {
    let shared = IoSession::new();
    for &(lo, hi) in queries {
        let _ = index.query(lo, hi, &shared);
    }
    shared.stats().reads
}

fn cold_parity_for<I>(name: &str, index: &I, sigma: u32)
where
    I: PersistIndex + SecondaryIndex,
{
    let path = store_dir().join(format!("{name}.psi"));
    psi::store::save(index, &path).expect("save");
    let queries = workload(sigma);
    // Solo charges (RAM index: charges are backend-independent by
    // construction) — the per-query parity baseline.
    let solo: Vec<IoStats> = queries
        .iter()
        .map(|&(lo, hi)| index.query_measured(lo, hi).1)
        .collect();
    let expected_rows: Vec<Vec<u64>> = queries
        .iter()
        .map(|&(lo, hi)| index.query_measured(lo, hi).0.to_vec())
        .collect();
    for backend in [Backend::File, Backend::Mmap] {
        let opts = OpenOptions {
            backend,
            pool_blocks: 1 << 16,
            retry: None,
            verify: true,
        };
        let union = {
            let opened = open::<I>(&path, &opts).expect("open");
            union_charge(&opened.index, &queries)
        };
        for threads in THREAD_COUNTS {
            let opened = Arc::new(open::<I>(&path, &opts).expect("open"));
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let opened = Arc::clone(&opened);
                    let queries = &queries;
                    let solo = &solo;
                    let expected_rows = &expected_rows;
                    scope.spawn(move || {
                        for qi in (t..queries.len()).step_by(threads) {
                            let (lo, hi) = queries[qi];
                            let io = IoSession::new();
                            let rows = opened.index.query(lo, hi, &io);
                            assert_eq!(rows.to_vec(), expected_rows[qi], "{name} rows q{qi}");
                            assert_eq!(
                                io.stats(),
                                solo[qi],
                                "{name} {backend:?} q{qi} at {threads} threads: \
                                 charge must not depend on contention"
                            );
                        }
                    });
                }
            });
            assert_eq!(
                opened.real_fetches(),
                union,
                "{name} {backend:?}: cold real reads at {threads} threads \
                 must equal the workload's distinct-block charge"
            );
            // Warm replay on the same pool: zero further fetches.
            let before = opened.real_fetches();
            for &(lo, hi) in &queries {
                let io = IoSession::new();
                let _ = opened.index.query(lo, hi, &io);
            }
            assert_eq!(opened.real_fetches(), before, "{name} warm pool fetches");
        }
    }
}

#[test]
fn cold_real_reads_equal_union_charge_at_every_thread_count_optimal() {
    let s = psi::workloads::zipf(1 << 14, 128, 1.1, 7);
    cold_parity_for(
        "optimal_conc",
        &OptimalIndex::build(&s, 128, IoConfig::default()),
        128,
    );
}

#[test]
fn cold_real_reads_equal_union_charge_at_every_thread_count_compressed_scan() {
    let s = psi::workloads::zipf(1 << 14, 128, 1.1, 8);
    cold_parity_for(
        "cscan_conc",
        &CompressedScanIndex::build(&s, 128, IoConfig::default()),
        128,
    );
}

#[test]
fn cold_real_reads_equal_union_charge_at_every_thread_count_position_list() {
    let s = psi::workloads::uniform(1 << 13, 64, 9);
    cold_parity_for(
        "plist_conc",
        &PositionListIndex::build(&s, 64, IoConfig::default()),
        64,
    );
}

/// Two threads racing the *same* query on the same cold slot: the skip
/// directory (and every payload block) is fetched once, and both racers
/// are charged exactly what a solo run charges — the `OnceLock`/shard-
/// lock story of ISSUE 5's satellite, asserted as charge parity.
#[test]
fn racing_cold_queries_do_the_work_once_and_charge_alike() {
    // A broad range on compressed_scan lifts skip directories for every
    // large per-symbol bitmap (count >= SKIP_LIFT_MIN), so the race
    // covers both payload and side-extent directory reads.
    let sigma = 32u32;
    let s = psi::workloads::zipf(1 << 15, sigma, 0.9, 11);
    let index = CompressedScanIndex::build(&s, sigma, IoConfig::default());
    let path = store_dir().join("race_cold.psi");
    psi::store::save(&index, &path).expect("save");
    let (lo, hi) = (0u32, sigma - 1);
    let (want_rows, solo) = index.query_measured(lo, hi);
    let want_rows = want_rows.to_vec();
    for backend in [Backend::File, Backend::Mmap] {
        let opened = Arc::new(
            open::<CompressedScanIndex>(
                &path,
                &OpenOptions {
                    backend,
                    pool_blocks: 1 << 16,
                    retry: None,
                    verify: true,
                },
            )
            .expect("open"),
        );
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let opened = Arc::clone(&opened);
                let want_rows = &want_rows;
                scope.spawn(move || {
                    let io = IoSession::new();
                    let rows = opened.index.query(lo, hi, &io);
                    assert_eq!(&rows.to_vec(), want_rows);
                    assert_eq!(io.stats(), solo, "racer charged like a solo run");
                });
            }
        });
        assert_eq!(
            opened.real_fetches(),
            solo.reads,
            "{backend:?}: 8 racers fetch each block once, not eight times"
        );
    }
}

/// The `GapBitmap` skip-directory `OnceLock` under a thread race: the
/// lazily built directory answers every thread correctly and identically
/// to an eagerly sampled twin.
#[test]
fn skip_directory_lazy_build_race_is_consistent() {
    use psi::bits::GapBitmap;
    let positions: Vec<u64> = (0..50_000u64).map(|i| i * 7 + (i % 5)).collect();
    let universe = positions.last().unwrap() + 1;
    // `from_code_bits` leaves the skip OnceLock cold — the racing path.
    let eager = GapBitmap::from_sorted(&positions, universe);
    let cold = GapBitmap::from_code_bits(eager.code_bits().clone(), eager.count(), universe);
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let cold = &cold;
            let positions = &positions;
            scope.spawn(move || {
                for k in (t..positions.len() as u64).step_by(997) {
                    assert_eq!(cold.select(k), Some(positions[k as usize]));
                    assert!(cold.contains(positions[k as usize]));
                    assert_eq!(cold.rank(positions[k as usize]), k);
                }
            });
        }
    });
    assert_eq!(cold.skip_dir().entries(), eager.skip_dir().entries());
}

/// Batch executor determinism across the full index spectrum: the
/// parallel outcomes (rows, I/O, plans) are identical to sequential
/// execution for every family.
#[test]
fn batch_executor_matches_sequential_for_every_family() {
    use psi::query::{ConjunctiveQuery, IndexedTable};
    let n = 2000usize;
    let table = psi::workloads::Table::generate(
        n,
        &[
            psi::workloads::ColumnSpec {
                name: "a".into(),
                sigma: 16,
                dist: psi::workloads::Dist::Zipf(1.0),
            },
            psi::workloads::ColumnSpec {
                name: "b".into(),
                sigma: 8,
                dist: psi::workloads::Dist::Uniform,
            },
        ],
        23,
    );
    let batch: Vec<ConjunctiveQuery> = (0..8u32)
        .flat_map(|v| {
            [
                Predicate::point("b", v % 8),
                Predicate::range("a", v, (v + 4).min(15)),
                Predicate::and([
                    Predicate::range("a", v, (v + 6).min(15)),
                    Predicate::point("b", (v + 1) % 8),
                ]),
                Predicate::and([
                    Predicate::not(Predicate::point("a", v)),
                    Predicate::range("b", 0, 5),
                ]),
            ]
        })
        .map(|p| p.normalize().expect("conjunctive"))
        .collect();
    let cfg = IoConfig::with_block_bits(1024);
    type BuildFn = Box<dyn Fn(&[u32], u32) -> Box<dyn SecondaryIndex>>;
    let families: Vec<(&'static str, BuildFn)> = vec![
        (
            "optimal",
            Box::new(move |s, g| Box::new(OptimalIndex::build(s, g, cfg))),
        ),
        (
            "uniform_tree",
            Box::new(move |s, g| Box::new(UniformTreeIndex::build(s, g, cfg))),
        ),
        (
            "semi_dynamic",
            Box::new(move |s, g| Box::new(psi::SemiDynamicIndex::build(s, g, cfg))),
        ),
        (
            "buffered",
            Box::new(move |s, g| Box::new(psi::BufferedIndex::build(s, g, cfg))),
        ),
        (
            "buffered_bitmap",
            Box::new(move |s, g| Box::new(psi::BufferedBitmapIndex::build(s, g, cfg))),
        ),
        (
            "fully_dynamic",
            Box::new(move |s, g| Box::new(psi::FullyDynamicIndex::build(s, g, cfg))),
        ),
        (
            "position_list",
            Box::new(move |s, g| Box::new(PositionListIndex::build(s, g, cfg))),
        ),
        (
            "uncompressed",
            Box::new(move |s, g| Box::new(UncompressedBitmapIndex::build(s, g, cfg))),
        ),
        (
            "compressed_scan",
            Box::new(move |s, g| Box::new(CompressedScanIndex::build(s, g, cfg))),
        ),
        (
            "binned_w4",
            Box::new(move |s, g| Box::new(BinnedBitmapIndex::build(s, g, 4, cfg))),
        ),
        (
            "multires_w4",
            Box::new(move |s, g| Box::new(MultiResolutionIndex::build(s, g, 4, cfg))),
        ),
        (
            "range_encoded",
            Box::new(move |s, g| Box::new(RangeEncodedIndex::build(s, g, cfg))),
        ),
        (
            "interval_encoded",
            Box::new(move |s, g| Box::new(IntervalEncodedIndex::build(s, g, cfg))),
        ),
    ];
    // Ground truth once, from the raw table.
    let truth: Vec<Vec<u64>> = batch
        .iter()
        .map(|q| {
            let mut rows: Option<Vec<u64>> = None;
            for c in &q.conditions {
                let col = table.columns.iter().find(|col| col.name == c.attr).unwrap();
                let base = naive_query(&col.data, c.lo.min(col.sigma - 1), c.hi.min(col.sigma - 1));
                let mut set: Vec<u64> = if c.lo >= col.sigma {
                    Vec::new()
                } else {
                    base.to_vec()
                };
                if c.negated {
                    let all: Vec<u64> = (0..n as u64).collect();
                    set = all.into_iter().filter(|p| !set.contains(p)).collect();
                }
                rows = Some(match rows {
                    None => set,
                    Some(prev) => prev.into_iter().filter(|p| set.contains(p)).collect(),
                });
            }
            rows.unwrap_or_else(|| (0..n as u64).collect())
        })
        .collect();
    for (name, build) in &families {
        let indexed = IndexedTable::build(&table, |s, g| build(s, g));
        let sequential: Vec<_> = batch
            .iter()
            .map(|q| indexed.execute_conjunctive(q).expect("sequential"))
            .collect();
        for threads in [2, 4, 8] {
            let parallel = indexed.execute_batch(&batch, threads).expect("batch");
            for (qi, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
                assert_eq!(
                    p.rows.to_vec(),
                    s.rows.to_vec(),
                    "{name} q{qi} at {threads} threads"
                );
                assert_eq!(p.rows.to_vec(), truth[qi], "{name} q{qi} vs naive");
                assert_eq!(p.io, s.io, "{name} q{qi} io at {threads} threads");
                assert_eq!(p.plan.order, s.plan.order, "{name} q{qi} plan");
            }
        }
    }
}
