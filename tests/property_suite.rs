//! Workspace-level property tests: random strings, random ranges, random
//! dynamic histories — every structure must agree with the naive model.

use proptest::prelude::*;
use psi::{
    naive_query, AppendIndex, DynamicIndex, IoConfig, IoSession, OptimalIndex, SecondaryIndex,
};

fn cfg() -> IoConfig {
    IoConfig::with_block_bits(512)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimal_matches_naive(
        symbols in proptest::collection::vec(0u32..24, 1..400),
        lo in 0u32..24,
        width in 0u32..24,
    ) {
        let hi = (lo + width).min(23);
        let idx = OptimalIndex::build(&symbols, 24, cfg());
        let io = IoSession::new();
        prop_assert_eq!(idx.query(lo, hi, &io).to_vec(), naive_query(&symbols, lo, hi).to_vec());
    }

    #[test]
    fn semi_dynamic_replays_any_history(
        initial in proptest::collection::vec(0u32..12, 0..150),
        appends in proptest::collection::vec(0u32..12, 0..150),
        lo in 0u32..12,
        width in 0u32..12,
    ) {
        let hi = (lo + width).min(11);
        let mut idx = psi::SemiDynamicIndex::build(&initial, 12, cfg());
        let io = IoSession::untracked();
        let mut all = initial.clone();
        for &c in &appends {
            idx.append(c, &io);
            all.push(c);
        }
        let io = IoSession::new();
        prop_assert_eq!(idx.query(lo, hi, &io).to_vec(), naive_query(&all, lo, hi).to_vec());
    }

    #[test]
    fn fully_dynamic_replays_changes(
        initial in proptest::collection::vec(0u32..8, 1..120),
        edits in proptest::collection::vec((any::<proptest::sample::Index>(), 0u32..8), 0..60),
        lo in 0u32..8,
        width in 0u32..8,
    ) {
        let hi = (lo + width).min(7);
        let mut current = initial.clone();
        let mut idx = psi::FullyDynamicIndex::build(&initial, 8, cfg());
        let io = IoSession::untracked();
        for (pos, sym) in edits {
            let p = pos.index(current.len()) as u64;
            idx.change(p, sym, &io);
            current[p as usize] = sym;
        }
        let io = IoSession::new();
        prop_assert_eq!(idx.query(lo, hi, &io).to_vec(), naive_query(&current, lo, hi).to_vec());
    }

    #[test]
    fn approximate_is_always_a_superset(
        symbols in proptest::collection::vec(0u32..16, 50..300),
        lo in 0u32..16,
        width in 0u32..16,
        eps_exp in 1u32..8,
    ) {
        let hi = (lo + width).min(15);
        let eps = 0.5f64.powi(eps_exp as i32);
        let idx = psi::ApproximateIndex::build(&symbols, 16, cfg(), 11);
        let io = IoSession::untracked();
        let r = idx.query_approx(lo, hi, eps, &io);
        for p in naive_query(&symbols, lo, hi).iter() {
            prop_assert!(r.contains(p), "lost member {}", p);
        }
        // Preimage enumeration agrees with membership.
        let members: Vec<u64> = r.iter().collect();
        prop_assert!(members.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rid_set_intersection_is_set_intersection(
        a in proptest::collection::btree_set(0u64..300, 0..80),
        b in proptest::collection::btree_set(0u64..300, 0..80),
    ) {
        use psi::bits::GapBitmap;
        let ra = psi::RidSet::from_positions(GapBitmap::from_sorted_iter(a.iter().copied(), 300));
        let rb = psi::RidSet::from_positions(GapBitmap::from_sorted_iter(b.iter().copied(), 300));
        let want: Vec<u64> = a.intersection(&b).copied().collect();
        prop_assert_eq!(ra.intersect(&rb).to_vec(), want);
    }
}
