//! The kill-switch demo: the fault-tolerant read path end to end, on a
//! real store file with real corruption.
//!
//! One extent of one attribute's index is corrupted on disk. A verified
//! pooled fetch detects it (checksum trailer mismatch at fault-in), the
//! executor quarantines the extent and degrades that attribute to a
//! table-scan fallback — the conjunctive query still completes with the
//! exact reference rows. `rebuild_attribute` then swaps in a fresh index,
//! clears the quarantine, and the post-rebuild query costs exactly what a
//! never-corrupted table costs. The scrubber finds the same corruption
//! offline within its per-tick block budget, and verification itself is
//! free on the simulated cost model: identical `IoStats` and identical
//! cold fetch counts with the checksum on or off, and warm hits never
//! re-verify (zero new real fetches on replay).

use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use psi::io::{ErrorClass, Scrubber};
use psi::query::{IndexedColumn, QueryError};
use psi::store::format::read_header;
use psi::store::{open, save, Backend, OpenOptions, Opened, PersistIndex};
use psi::workloads::{people_table, Table};
use psi::{IndexedTable, IoConfig, OptimalIndex, Predicate, SecondaryIndex, Symbol};

fn cfg() -> IoConfig {
    IoConfig::with_block_bits(512)
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("psi_degraded_read").join(name);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

fn build_optimal(symbols: &[Symbol], sigma: u32) -> Box<dyn SecondaryIndex> {
    Box::new(OptimalIndex::build(symbols, sigma, cfg()))
}

fn col_path(dir: &Path, attr: &str) -> PathBuf {
    dir.join(format!("col_{attr}.psi"))
}

fn save_columns(table: &Table, dir: &Path) {
    for col in &table.columns {
        let index = OptimalIndex::build(&col.data, col.sigma, cfg());
        save(&index, col_path(dir, &col.name)).expect("save column index");
    }
}

fn open_opts(verify: bool) -> OpenOptions {
    OpenOptions {
        backend: Backend::File,
        pool_blocks: 4096,
        retry: None,
        verify,
    }
}

fn open_column(dir: &Path, attr: &str, verify: bool) -> Opened<OptimalIndex> {
    open::<OptimalIndex>(&col_path(dir, attr), &open_opts(verify)).expect("open column index")
}

/// Opens every column index from `dir` (verified fetches on) and attaches
/// the source data, arming the scan fallback.
fn indexed_from_files(table: &Table, dir: &Path) -> IndexedTable {
    let columns = table
        .columns
        .iter()
        .map(|col| IndexedColumn {
            name: col.name.clone(),
            sigma: col.sigma,
            index: Box::new(open_column(dir, &col.name, true).index) as Box<dyn SecondaryIndex>,
        })
        .collect();
    let mut indexed = IndexedTable::from_columns(columns);
    for col in &table.columns {
        indexed
            .attach_column_data(&col.name, col.data.clone())
            .expect("attach source");
    }
    indexed
}

/// Flips one payload byte in every block of every live extent of the
/// store file at `path`, so any verified payload fetch detects the
/// damage. Header and metadata pages are untouched — the file still
/// opens. Returns the number of blocks corrupted.
fn corrupt_all_payload(path: &Path) -> u64 {
    let (_, header) = read_header(path).expect("read store header");
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .expect("open store file for corruption");
    let mut corrupted = 0;
    for volume in &header.volumes {
        let page = volume.page_bytes();
        for ext in &volume.extents {
            if ext.freed || ext.file_off == u64::MAX {
                continue;
            }
            let blocks = ext.bit_len.div_ceil(volume.config.block_bits).max(1);
            for b in 0..blocks {
                let off = ext.file_off + b * page + 3;
                let mut byte = [0u8; 1];
                file.seek(SeekFrom::Start(off)).expect("seek");
                file.read_exact(&mut byte).expect("read payload byte");
                byte[0] ^= 0xFF;
                file.seek(SeekFrom::Start(off)).expect("seek back");
                file.write_all(&byte).expect("flip payload byte");
                corrupted += 1;
            }
        }
    }
    file.sync_all().expect("sync corruption");
    assert!(corrupted > 0, "store file has no payload to corrupt");
    corrupted
}

fn married_men_30s() -> Predicate {
    Predicate::and([
        Predicate::point("marital_status", 1),
        Predicate::point("sex", 0),
        Predicate::range("age", 30, 35),
    ])
}

/// The acceptance demo, end to end: corrupt → detect → degrade (correct
/// rows) → quarantine → rebuild → healthy cost.
#[test]
fn corrupt_extent_degrades_then_rebuild_restores_healthy_cost() {
    let dir = test_dir("kill_switch");
    let table = people_table(1500, 9);
    save_columns(&table, &dir);
    corrupt_all_payload(&col_path(&dir, "age"));

    let predicate = married_men_30s();
    let want = predicate.naive_rows(&table);
    assert!(!want.is_empty(), "fixture predicate selects no rows");

    // Healthy reference: the same table fully in memory. Simulated
    // charges are backend-independent, so this is the cost baseline a
    // repaired table must return to.
    let healthy = IndexedTable::build(&table, |s, g| build_optimal(s, g));
    let healthy_out = healthy.execute(&predicate).expect("healthy execute");
    assert_eq!(healthy_out.rows.to_vec(), want);
    assert!(healthy_out.degraded.is_empty());

    // The corrupted open: the verified fetch trips on the age extent,
    // the executor quarantines it and degrades to the attached source
    // column — the query still returns the exact rows.
    let mut indexed = indexed_from_files(&table, &dir);
    let out = indexed.execute(&predicate).expect("degraded execute");
    assert_eq!(out.rows.to_vec(), want, "degraded rows must stay exact");
    assert_eq!(out.degraded, vec!["age".to_string()]);
    assert!(
        !indexed.quarantined_extents("age").is_empty(),
        "corruption must quarantine the failing extent"
    );
    assert!(indexed.is_quarantined("age"));

    // A second query plans around the quarantine up front: still the
    // right rows, still reported degraded.
    let again = indexed
        .execute(&predicate)
        .expect("planned-degraded execute");
    assert_eq!(again.rows.to_vec(), want);
    assert_eq!(again.degraded, vec!["age".to_string()]);

    // Online repair: rebuild the attribute from its source column and
    // atomically swap it in. Quarantine clears, the rows are
    // bit-identical, and the I/O charge equals the healthy baseline.
    indexed
        .rebuild_attribute("age", |s, g| build_optimal(s, g))
        .expect("rebuild");
    assert!(!indexed.is_quarantined("age"));
    assert!(indexed.quarantined_extents("age").is_empty());
    let after = indexed.execute(&predicate).expect("post-rebuild execute");
    assert_eq!(after.rows.to_vec(), want);
    assert!(after.degraded.is_empty());
    assert_eq!(
        after.io, healthy_out.io,
        "post-rebuild I/O must equal the healthy baseline"
    );
}

/// Corruption on an attribute with no attached source column cannot be
/// degraded around: the query fails with a typed `Corrupt` read error —
/// never a panic, never wrong rows.
#[test]
fn corruption_without_source_data_is_a_typed_error() {
    let dir = test_dir("no_source");
    let table = people_table(900, 11);
    save_columns(&table, &dir);
    corrupt_all_payload(&col_path(&dir, "age"));

    let columns = table
        .columns
        .iter()
        .map(|col| IndexedColumn {
            name: col.name.clone(),
            sigma: col.sigma,
            index: Box::new(open_column(&dir, &col.name, true).index) as Box<dyn SecondaryIndex>,
        })
        .collect();
    let indexed = IndexedTable::from_columns(columns);

    match indexed.execute(&married_men_30s()) {
        Err(QueryError::Read(e)) => {
            assert_eq!(
                e.class,
                ErrorClass::Corrupt,
                "expected a corrupt-class error"
            );
            assert!(!e.message.is_empty());
        }
        other => panic!("expected a typed corrupt read error, got {other:?}"),
    }
}

/// On-disk repair: rebuild the index from source data and `save` it over
/// the damaged file (temp + rename), then reopen — verified fetches are
/// clean and a full scrub pass finds nothing.
#[test]
fn on_disk_repair_round_trip() {
    let dir = test_dir("repair");
    let table = people_table(900, 13);
    save_columns(&table, &dir);
    let path = col_path(&dir, "age");
    corrupt_all_payload(&path);

    let age = table.columns.iter().find(|c| c.name == "age").unwrap();

    // The damage is real before repair: scrubbing the corrupted file
    // reports corrupt-class errors.
    {
        let opened = open_column(&dir, "age", true);
        let disks = opened.index.disks();
        let mut scrubber = Scrubber::new();
        let mut found = 0;
        for disk in &disks {
            scrubber.reset();
            loop {
                let report = scrubber.tick(disk, 8);
                found += report.errors.len();
                if report.done {
                    break;
                }
            }
        }
        assert!(found > 0, "scrub must see the corruption before repair");
    }

    // Repair: rebuild from the source column, save atomically, reopen.
    let fresh = OptimalIndex::build(&age.data, age.sigma, cfg());
    save(&fresh, &path).expect("save repaired index");

    let opened = open_column(&dir, "age", true);
    let io = psi::IoSession::new();
    for (lo, hi) in [(0u32, 0u32), (30, 35), (0, 127), (64, 100)] {
        let rows = opened
            .index
            .try_query(lo, hi, &io)
            .expect("repaired index must read clean");
        assert_eq!(
            rows.to_vec(),
            psi::naive_query(&age.data, lo, hi).to_vec(),
            "repaired rows [{lo}, {hi}]"
        );
    }

    let disks = opened.index.disks();
    let mut scrubber = Scrubber::new();
    for disk in &disks {
        scrubber.reset();
        loop {
            let report = scrubber.tick(disk, 8);
            assert!(report.errors.is_empty(), "repaired file must scrub clean");
            if report.done {
                break;
            }
        }
    }
}

/// The online scrubber finds real on-disk corruption at a bounded rate
/// (never more than its per-tick block budget), and its findings feed
/// the executor's quarantine so later queries plan around the damage
/// without ever touching it.
#[test]
fn scrubber_finds_corruption_within_budget_and_feeds_quarantine() {
    let dir = test_dir("scrubber");
    let table = people_table(900, 17);
    save_columns(&table, &dir);
    let corrupted_blocks = corrupt_all_payload(&col_path(&dir, "age"));

    let opened = open_column(&dir, "age", true);
    let disks = opened.index.disks();

    let budget = 4;
    let mut errors = Vec::new();
    let mut ticks = 0u64;
    for disk in &disks {
        let mut scrubber = Scrubber::new();
        loop {
            let report = scrubber.tick(disk, budget);
            assert!(
                report.scanned <= budget as u64,
                "tick scanned {} blocks, budget is {budget}",
                report.scanned
            );
            errors.extend(report.errors);
            ticks += 1;
            if report.done {
                assert!(scrubber.is_done());
                break;
            }
        }
    }
    assert!(!errors.is_empty(), "scrub must find the corruption");
    assert!(errors.len() as u64 <= corrupted_blocks);
    assert!(ticks > 1, "budget {budget} must spread the scan over ticks");
    for e in &errors {
        assert_eq!(e.class, ErrorClass::Corrupt);
    }

    // Feed the findings into a fresh table's quarantine: the next query
    // never touches the damaged index and still answers exactly.
    let indexed = indexed_from_files(&table, &dir);
    for e in &errors {
        indexed
            .quarantine_extent("age", e.extent.0)
            .expect("quarantine scrub finding");
    }
    assert!(indexed.is_quarantined("age"));
    let predicate = married_men_30s();
    let out = indexed
        .execute(&predicate)
        .expect("quarantine-planned execute");
    assert_eq!(out.rows.to_vec(), predicate.naive_rows(&table));
    assert_eq!(out.degraded, vec!["age".to_string()]);
}

/// Verification is free on the simulated cost model: with the checksum
/// on or off, every query has identical `IoStats` and the pool faults in
/// identical block counts — and a warm replay re-reads nothing, because
/// trailers are only ever checked at fault-in. Asserted structurally
/// (counters), not benchmarked.
#[test]
fn verified_fetches_cost_nothing_on_the_model_and_never_recheck_warm_hits() {
    let dir = test_dir("warm_cost");
    let table = people_table(900, 19);
    save_columns(&table, &dir);
    let age = table.columns.iter().find(|c| c.name == "age").unwrap();

    let with_verify = open_column(&dir, "age", true);
    let without_verify = open_column(&dir, "age", false);
    let grid: Vec<(u32, u32)> = (0..8)
        .flat_map(|i| (i..8).map(move |j| (i * 16, (j * 16 + 15).min(127))))
        .collect();

    // Cold pass: identical answers, identical simulated charges,
    // identical real fetch counts.
    for &(lo, hi) in &grid {
        let (rows_v, io_v) = with_verify.index.query_measured(lo, hi);
        let (rows_r, io_r) = without_verify.index.query_measured(lo, hi);
        assert_eq!(rows_v.to_vec(), rows_r.to_vec(), "rows [{lo}, {hi}]");
        assert_eq!(
            rows_v.to_vec(),
            psi::naive_query(&age.data, lo, hi).to_vec()
        );
        assert_eq!(io_v, io_r, "verification changed IoStats for [{lo}, {hi}]");
    }
    let cold_v = with_verify.real_fetches();
    let cold_r = without_verify.real_fetches();
    assert!(cold_v > 0, "grid must fault in payload blocks");
    assert_eq!(cold_v, cold_r, "verification changed cold fetch counts");

    // Warm replay: every block is already pooled — no new fetches under
    // either mode, so no trailer is ever rechecked on a warm hit.
    for &(lo, hi) in &grid {
        let (_, io_v) = with_verify.index.query_measured(lo, hi);
        let (_, io_r) = without_verify.index.query_measured(lo, hi);
        assert_eq!(io_v, io_r);
    }
    assert_eq!(with_verify.real_fetches(), cold_v, "warm hits re-fetched");
    assert_eq!(
        without_verify.real_fetches(),
        cold_r,
        "warm hits re-fetched"
    );
    let pools = with_verify.pool_stats();
    assert!(pools.hits > 0, "warm replay must hit the pool");
}
