//! Batch execution under pool-budget exhaustion: a query that cannot pin
//! enough frames must fail alone, in its own result slot, while sibling
//! queries in the same batch return correct rows (PR 8 satellite).
//!
//! The failing index is a real `OptimalIndex` re-hosted (via the public
//! `PersistIndex` parts API) over a deliberately tiny buffer pool — a
//! hard frame budget smaller than the number of simultaneously pinned
//! blocks its k-way heap merge needs. Before the fix, the worker thread
//! panicked on `PoolError::Exhausted` and poisoned the whole batch; now
//! the slot settles to a typed `QueryError::Read` with `Transient` class
//! (frames free up once other queries unpin) and the pool itself stays
//! serviceable for cheaper queries afterwards.

use std::sync::Arc;

use psi::io::{BufferPool, Disk, ErrorClass, ExtentId, IoConfig, MemStore, StoredExtent};
use psi::query::{IndexedColumn, IndexedTable, Predicate, QueryError};
use psi::store::PersistIndex;
use psi::{naive_query, OptimalIndex, SecondaryIndex};

const BLOCK_BITS: u64 = 512;
const N: usize = 4096;
const WIDE_SIGMA: u32 = 64;

/// The wide column: symbols 1..=62 each appear exactly twice, at rows
/// spread far apart (different blocks), everything else is 0. A range
/// query over [1, 62] matches 124 rows — below the bitset-merge
/// threshold, so the engine's cover merge takes the k-way heap path and
/// holds one pinned block per stream simultaneously.
fn wide_data() -> Vec<u32> {
    let mut data = vec![0u32; N];
    for s in 1..63u32 {
        data[(s as usize) * 64] = s;
        data[(s as usize) * 64 + 33] = s;
    }
    data
}

fn narrow_data() -> Vec<u32> {
    (0..N as u32).map(|i| i % 8).collect()
}

/// Re-hosts a built index over a fresh pool with the given frame budget,
/// exactly the way `psi_store::open` wires an opened index — but with a
/// hard cap we control.
fn rehost(built: &OptimalIndex, capacity: usize, hard_cap: usize) -> OptimalIndex {
    let mut meta = psi::store::MetaBuf::new();
    built.write_meta(&mut meta);
    let disks = PersistIndex::disks(built);
    let d = disks[0];
    let stored: Vec<StoredExtent> = (0..d.num_extents())
        .map(|i| StoredExtent {
            bit_len: d.extent_bits(ExtentId(i as u32)),
            freed: d.is_freed(ExtentId(i as u32)),
        })
        .collect();
    let store = Arc::new(MemStore::from_disk(d));
    let pool = Arc::new(BufferPool::with_shards(
        store,
        capacity,
        hard_cap,
        1,
        d.block_bits(),
    ));
    let disk = Disk::from_stored(*d.config(), &stored, pool);
    let mut cursor = psi::store::MetaCursor::new(meta.bytes());
    OptimalIndex::from_parts(&mut cursor, vec![disk]).expect("re-host built index")
}

fn table_with(wide: OptimalIndex) -> IndexedTable {
    let built_narrow =
        OptimalIndex::build(&narrow_data(), 8, IoConfig::with_block_bits(BLOCK_BITS));
    IndexedTable::from_columns(vec![
        IndexedColumn {
            name: "wide".into(),
            sigma: WIDE_SIGMA,
            index: Box::new(wide),
        },
        IndexedColumn {
            name: "narrow".into(),
            sigma: 8,
            index: Box::new(built_narrow),
        },
    ])
}

#[test]
fn exhausted_pool_fails_one_slot_and_siblings_survive() {
    let data = wide_data();
    let built = OptimalIndex::build(&data, WIDE_SIGMA, IoConfig::with_block_bits(BLOCK_BITS));

    // Sanity: re-hosting over a generous pool answers correctly — the
    // exhaustion below is about the budget, not a broken re-host.
    let generous = rehost(&built, 1024, 4096);
    let (rows, _) = generous.query_measured(1, 62);
    assert_eq!(rows.to_vec(), naive_query(&data, 1, 62).to_vec());

    // Two frames total, hard cap two: the heap merge's third
    // simultaneously pinned stream block cannot be served.
    let tiny = rehost(&built, 2, 2);
    let t = table_with(tiny);

    let batch = vec![
        Predicate::point("narrow", 3).normalize().unwrap(),
        Predicate::range("wide", 1, 62).normalize().unwrap(),
        Predicate::range("narrow", 2, 5).normalize().unwrap(),
    ];
    let narrow = narrow_data();
    let want_point = naive_query(&narrow, 3, 3).to_vec();
    let want_range = naive_query(&narrow, 2, 5).to_vec();

    for threads in [1, 2, 0] {
        let settled = t.execute_batch_settled(&batch, threads);
        assert_eq!(settled.len(), 3);
        let ok0 = settled[0]
            .as_ref()
            .unwrap_or_else(|e| panic!("narrow point must survive ({threads} threads): {e}"));
        assert_eq!(ok0.rows.to_vec(), want_point, "{threads} threads");
        match &settled[1] {
            Err(QueryError::Read(e)) => assert_eq!(
                e.class,
                ErrorClass::Transient,
                "exhaustion is transient (frames free up), got: {e}"
            ),
            other => panic!(
                "wide range must fail typed on a 2-frame budget \
                 ({threads} threads), got {other:?}"
            ),
        }
        let ok2 = settled[2]
            .as_ref()
            .unwrap_or_else(|e| panic!("narrow range must survive ({threads} threads): {e}"));
        assert_eq!(ok2.rows.to_vec(), want_range, "{threads} threads");
    }

    // The failed merge unpinned everything on abort: the same pool still
    // serves queries that fit the budget.
    let after = t
        .execute(&Predicate::point("wide", 5))
        .expect("single-stream query fits two frames after the failed merge");
    assert_eq!(after.rows.to_vec(), naive_query(&data, 5, 5).to_vec());
}
