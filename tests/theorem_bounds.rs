//! Integration: measured I/O and space stay within explicit constant
//! factors of each theorem's bound (the repository-level statement of the
//! reproduction; EXPERIMENTS.md records the sweep outputs).

use psi::io::cost;
use psi::{
    AppendIndex, ApproximateIndex, IoConfig, IoSession, OptimalIndex, SecondaryIndex,
    SemiDynamicIndex, UniformTreeIndex,
};

const B: u64 = psi::io::DEFAULT_BLOCK_BITS;

#[test]
fn thm1_uniform_tree_bounds() {
    let n = 1usize << 16;
    let sigma = 256u32;
    let s = psi::workloads::uniform(n, sigma, 1);
    let idx = UniformTreeIndex::build(&s, sigma, IoConfig::default());
    // Space O(n lg^2 sigma): lg^2 sigma = 64 bits per position.
    assert!(idx.space_bits() < 2 * (n as u64) * 64);
    // Query O(T/B + lg sigma).
    for (lo, hi) in [(5u32, 5u32), (0, 63), (17, 200)] {
        let (r, io) = idx.query_measured(lo, hi);
        let bound = r.size_bits() as f64 / B as f64 + 2.0 * 8.0;
        assert!(
            (io.reads as f64) <= 4.0 * bound + 4.0,
            "[{lo},{hi}]: {} reads vs bound {bound:.1}",
            io.reads
        );
    }
}

#[test]
fn thm2_optimal_bounds() {
    let n = 1usize << 18;
    let sigma = 512u32;
    let s = psi::workloads::zipf(n, sigma, 1.0, 2);
    let idx = OptimalIndex::build(&s, sigma, IoConfig::default());
    // Space O(nH0 + n + sigma lg^2 n).
    let nh0 = psi::bits::entropy::nh0_bits(&s, sigma);
    let overhead = f64::from(sigma) * 18.0 * 18.0;
    assert!(
        (idx.space_bits() as f64) < 8.0 * (nh0 + n as f64) + 4.0 * overhead,
        "space {} vs nH0 {nh0}",
        idx.space_bits()
    );
    // Query O(z lg(n/z)/B + log_b n + lg lg n).
    let b = IoConfig::default().words_per_block(n as u64);
    for (lo, hi) in [(3u32, 3u32), (10, 40), (0, 200)] {
        let (r, io) = idx.query_measured(lo, hi);
        let bound = cost::thm2_query_ios(n as u64, r.cardinality(), B, b);
        assert!(
            (io.reads as f64) <= 12.0 * bound + 16.0,
            "[{lo},{hi}]: {} reads vs thm2 {bound:.1}",
            io.reads
        );
    }
}

#[test]
fn thm3_approximate_is_superset_and_cheaper() {
    let n = 1usize << 18;
    let sigma = 512u32;
    let s = psi::workloads::uniform(n, sigma, 3);
    let idx = ApproximateIndex::build(&s, sigma, IoConfig::default(), 7);
    let io_a = IoSession::new();
    let r = idx.query_approx(9, 9, 0.1, &io_a);
    assert!(!r.is_exact());
    let truth = psi::naive_query(&s, 9, 9);
    for p in truth.iter() {
        assert!(r.contains(p), "lost exact member {p}");
    }
    let io_e = IoSession::new();
    let _ = idx.query(9, 9, &io_e);
    assert!(
        io_a.stats().bits_read < io_e.stats().bits_read,
        "approx {} bits vs exact {}",
        io_a.stats().bits_read,
        io_e.stats().bits_read
    );
}

#[test]
fn thm4_appends_preserve_query_bound() {
    let sigma = 128u32;
    let mut idx = SemiDynamicIndex::new(sigma, IoConfig::default());
    let stream = psi::workloads::uniform(1 << 16, sigma, 4);
    let mut total = 0u64;
    for &c in &stream {
        let io = IoSession::new();
        idx.append(c, &io);
        total += io.stats().total();
    }
    let n = stream.len() as u64;
    let per_append = total as f64 / n as f64;
    // Amortized O(lg lg n) with implementation constants.
    assert!(
        per_append < 10.0 * cost::lg_lg(n).max(1.0),
        "{per_append:.2} I/Os per append"
    );
    // Queries still answer correctly and output-sensitively.
    let b = IoConfig::default().words_per_block(n);
    let (r, io) = idx.query_measured(10, 12);
    assert_eq!(r.to_vec(), psi::naive_query(&stream, 10, 12).to_vec());
    let bound = cost::thm2_query_ios(n, r.cardinality(), B, b);
    assert!(
        (io.reads as f64) <= 16.0 * bound + 32.0,
        "{} reads vs {bound:.1}",
        io.reads
    );
}

#[test]
fn uncompressed_and_position_list_are_the_extremes() {
    // The paper's framing (§1.3): position lists read z lg n bits;
    // uncompressed bitmaps read l*n bits; the optimal index beats the
    // worse of the two at both ends of the selectivity spectrum.
    use psi::baselines::{PositionListIndex, UncompressedBitmapIndex};
    let n = 1usize << 16;
    let sigma = 128u32;
    let s = psi::workloads::uniform(n, sigma, 5);
    let cfg = IoConfig::default();
    let opt = OptimalIndex::build(&s, sigma, cfg);
    let pl = PositionListIndex::build(&s, sigma, cfg);
    let un = UncompressedBitmapIndex::build(&s, sigma, cfg);

    // Wide range: position lists pay z lg n, optimal pays z lg(n/z).
    let (_, io_opt) = opt.query_measured(0, 100);
    let (_, io_pl) = pl.query_measured(0, 100);
    assert!(
        io_opt.reads < io_pl.reads,
        "optimal {} vs poslist {}",
        io_opt.reads,
        io_pl.reads
    );

    // Narrow range: uncompressed bitmaps still scan a whole bitmap.
    let (_, io_opt) = opt.query_measured(7, 7);
    let (_, io_un) = un.query_measured(7, 7);
    assert!(
        io_opt.reads <= io_un.reads,
        "optimal {} vs uncompressed {}",
        io_opt.reads,
        io_un.reads
    );
}
