//! Dynamic-index oracle suite: random interleavings of insert / delete /
//! change / query on `SemiDynamicIndex` and `FullyDynamicIndex`, pinned
//! against per-character `BTreeSet` oracles — including delete-then-
//! reinsert of the same rid, the case §4's `∞`-character encoding makes
//! subtle (a deleted position must stop matching every range and then
//! match again after reinsertion).

use std::collections::BTreeSet;

use proptest::prelude::*;
use psi::{AppendIndex, DynamicIndex, IoConfig, IoSession, MutOp, SecondaryIndex};

const SIGMA: u32 = 8;

fn cfg() -> IoConfig {
    IoConfig::with_block_bits(512)
}

/// The oracle: one sorted rid set per character, updated in lockstep
/// with the index under test.
struct Oracle {
    sets: Vec<BTreeSet<u64>>,
    /// Mirror of the string; `SIGMA` marks a deleted (`∞`) position.
    mirror: Vec<u32>,
}

impl Oracle {
    fn new() -> Oracle {
        Oracle {
            sets: vec![BTreeSet::new(); SIGMA as usize],
            mirror: Vec::new(),
        }
    }

    fn from_symbols(symbols: &[u32]) -> Oracle {
        let mut o = Oracle::new();
        for &s in symbols {
            o.append(s);
        }
        o
    }

    fn append(&mut self, sym: u32) {
        self.sets[sym as usize].insert(self.mirror.len() as u64);
        self.mirror.push(sym);
    }

    fn change(&mut self, pos: u64, sym: u32) {
        let old = self.mirror[pos as usize];
        if old < SIGMA {
            self.sets[old as usize].remove(&pos);
        }
        if sym < SIGMA {
            self.sets[sym as usize].insert(pos);
        }
        self.mirror[pos as usize] = sym;
    }

    fn delete(&mut self, pos: u64) {
        self.change(pos, SIGMA);
    }

    fn apply_mut_op(&mut self, op: &MutOp) {
        match *op {
            MutOp::Append { symbol } => self.append(symbol),
            MutOp::Change { pos, symbol } => self.change(pos, symbol),
            MutOp::Delete { pos } => self.delete(pos),
        }
    }

    fn expected(&self, lo: u32, hi: u32) -> Vec<u64> {
        let mut all: Vec<u64> = (lo..=hi)
            .flat_map(|c| self.sets[c as usize].iter().copied())
            .collect();
        all.sort_unstable();
        all
    }
}

fn check_queries<I: SecondaryIndex>(idx: &I, oracle: &Oracle, lo: u32, width: u32) {
    let lo = lo.min(SIGMA - 1);
    let hi = (lo + width).min(SIGMA - 1);
    let io = IoSession::new();
    let got = idx.query(lo, hi, &io).to_vec();
    assert_eq!(got, oracle.expected(lo, hi), "range [{lo}, {hi}]");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Semi-dynamic: any interleaving of appends and queries agrees with
    // the BTreeSet oracle at every query point.
    #[test]
    fn semi_dynamic_append_query_interleaving(
        ops in proptest::collection::vec((0u32..100, 0u32..SIGMA, 0u32..SIGMA), 1..150),
    ) {
        let mut idx = psi::SemiDynamicIndex::new(SIGMA, cfg());
        let mut oracle = Oracle::new();
        let io = IoSession::untracked();
        for (kind, sym, width) in ops {
            if kind < 70 {
                idx.append(sym, &io);
                oracle.append(sym);
            } else {
                check_queries(&idx, &oracle, sym, width);
            }
        }
        // Final exhaustive sweep.
        for lo in 0..SIGMA {
            for hi in lo..SIGMA {
                check_queries(&idx, &oracle, lo, hi - lo);
            }
        }
    }

    // Fully dynamic: random interleavings of append / change / delete /
    // reinsert / query, with delete-then-reinsert of the same rid forced
    // into every history.
    #[test]
    fn fully_dynamic_interleaving_with_reinsertion(
        initial in proptest::collection::vec(0u32..SIGMA, 1..80),
        ops in proptest::collection::vec(
            (0u32..100, any::<proptest::sample::Index>(), 0u32..SIGMA, 0u32..SIGMA),
            1..120,
        ),
    ) {
        let mut idx = psi::FullyDynamicIndex::build(&initial, SIGMA, cfg());
        let mut oracle = Oracle::from_symbols(&initial);
        let io = IoSession::untracked();
        for (kind, pos, sym, width) in ops {
            let len = oracle.mirror.len();
            match kind {
                0..=19 => {
                    idx.append(sym, &io);
                    oracle.append(sym);
                }
                20..=44 => {
                    let p = pos.index(len) as u64;
                    idx.change(p, sym, &io);
                    oracle.change(p, sym);
                }
                45..=64 => {
                    let p = pos.index(len) as u64;
                    idx.delete(p, &io);
                    oracle.delete(p);
                }
                65..=79 => {
                    // Reinsert a deleted rid when one exists (delete-then-
                    // reinsert of the same rid), else change a live one.
                    let p = pos.index(len);
                    let deleted = oracle.mirror.iter().position(|&v| v == SIGMA);
                    let target = deleted.unwrap_or(p) as u64;
                    idx.change(target, sym, &io);
                    oracle.change(target, sym);
                }
                _ => check_queries(&idx, &oracle, sym, width),
            }
        }
        for lo in (0..SIGMA).step_by(2) {
            for hi in lo..SIGMA {
                check_queries(&idx, &oracle, lo, hi - lo);
            }
        }
    }

    // Durability round-trips mid-workload: run the same fully dynamic
    // interleaving through the WAL-journaled handle, and every k-th
    // operation checkpoint + drop + recover from disk. Replay must
    // continue the history exactly — the recovered index agrees with the
    // oracle both right after each reopen and at the end.
    #[test]
    fn fully_dynamic_history_survives_checkpoint_and_reopen(
        initial in proptest::collection::vec(0u32..SIGMA, 1..60),
        ops in proptest::collection::vec(
            (0u32..100, any::<proptest::sample::Index>(), 0u32..SIGMA),
            1..100,
        ),
        every in 7usize..23,
    ) {
        let dir = std::env::temp_dir()
            .join("psi_dynamic_oracle")
            .join("ckpt_reopen");
        let _ = std::fs::remove_dir_all(&dir);
        let idx = psi::FullyDynamicIndex::build(&initial, SIGMA, cfg());
        let mut oracle = Oracle::from_symbols(&initial);
        let mut durable = psi::wal::Durable::create(
            &dir,
            idx,
            psi::wal::DurableOptions { group_commit_ops: 8, ..Default::default() },
        )
        .expect("create durable");
        let io = IoSession::untracked();
        for (k, (kind, pos, sym)) in ops.iter().enumerate() {
            let len = oracle.mirror.len();
            let op = match kind {
                0..=39 => MutOp::Append { symbol: *sym },
                40..=69 => MutOp::Change { pos: pos.index(len) as u64, symbol: *sym },
                _ => MutOp::Delete { pos: pos.index(len) as u64 },
            };
            durable.apply(&op, &io).expect("apply");
            oracle.apply_mut_op(&op);
            if (k + 1) % every == 0 {
                durable.checkpoint().expect("checkpoint");
                drop(durable);
                let (recovered, report) =
                    psi::wal::recover::<psi::FullyDynamicIndex>(&dir, Default::default())
                        .expect("recover");
                prop_assert_eq!(report.replayed, 0, "checkpoint absorbed the log");
                durable = recovered;
                check_queries(durable.index(), &oracle, 0, SIGMA - 1);
                check_queries(durable.index(), &oracle, (k as u32) % SIGMA, 2);
            }
        }
        // One final crash-shaped reopen (no checkpoint first): the
        // committed log tail replays on top of the last checkpoint.
        durable.commit().expect("commit");
        drop(durable);
        let (recovered, _) =
            psi::wal::recover::<psi::FullyDynamicIndex>(&dir, Default::default())
                .expect("final recover");
        for lo in (0..SIGMA).step_by(2) {
            for hi in lo..SIGMA {
                check_queries(recovered.index(), &oracle, lo, hi - lo);
            }
        }
    }
}

/// Deterministic delete-then-reinsert of the same rid: the position must
/// stop matching every range while deleted and match its new character
/// afterwards — even when deleted and reinserted repeatedly.
#[test]
fn delete_then_reinsert_same_rid() {
    let initial = psi::workloads::uniform(600, SIGMA, 51);
    let mut idx = psi::FullyDynamicIndex::build(&initial, SIGMA, cfg());
    let mut oracle = Oracle::from_symbols(&initial);
    let io = IoSession::untracked();
    for &rid in &[0u64, 299, 599] {
        let old = oracle.mirror[rid as usize];
        for round in 0..3 {
            idx.delete(rid, &io);
            oracle.delete(rid);
            let gone = idx.query(old, old, &io).to_vec();
            assert!(
                !gone.contains(&rid),
                "rid {rid} still matches after delete (round {round})"
            );
            let back = (old + round) % SIGMA;
            idx.change(rid, back, &io);
            oracle.change(rid, back);
            let found = idx.query(back, back, &io).to_vec();
            assert!(
                found.contains(&rid),
                "rid {rid} lost after reinsert (round {round})"
            );
        }
    }
    for lo in 0..SIGMA {
        for hi in lo..SIGMA {
            check_queries(&idx, &oracle, lo, hi - lo);
        }
    }
}
