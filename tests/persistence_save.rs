//! Phase 1 of the cross-process persistence suite: build every index
//! family (with dynamic histories where supported) and save one store
//! file per family. The CI persistence job runs this binary first, then
//! `persistence_open` in a fresh process against the same directory.

mod persist_common;

#[test]
fn save_all_families_and_scrub() {
    let tags = persist_common::save_all();
    assert!(tags.len() >= 12);
    // Every file opens structurally and every payload page checksums.
    for entry in std::fs::read_dir(persist_common::suite_dir()).expect("dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("psi") {
            psi::store::format::scrub(&path)
                .unwrap_or_else(|e| panic!("{} fails scrub: {e}", path.display()));
        }
    }
}
