//! Phase 2 of the cross-process persistence suite: reopen every family's
//! store file and replay the cross-index consistency suite against the
//! reopened indexes — bit-identical `RidSet`s, identical `IoStats`,
//! identical cardinality hints, and (cold cache) real block fetches equal
//! to the simulated charge.
//!
//! When run standalone the files are (re)created in-process; the CI
//! persistence job runs `persistence_save` in a separate process first
//! and pins `PSI_PERSIST_DIR`, making this a true restart test.

mod persist_common;

use persist_common::*;
use psi::store::{open, Backend, OpenOptions, Opened, PersistIndex};
use psi::{IndexedTable, IoSession, OptimalIndex, Predicate, SecondaryIndex};

fn opts(backend: Backend, pool_blocks: usize) -> OpenOptions {
    OpenOptions {
        backend,
        pool_blocks,
        retry: None,
        verify: true,
    }
}

fn reopen<I: PersistIndex>(backend: Backend, pool_blocks: usize) -> Opened<I> {
    open::<I>(family_path(I::TAG), &opts(backend, pool_blocks)).expect("open family")
}

/// Replays the query grid on a reopened index against the in-process
/// reference: identical results, identical simulated I/O, identical
/// hints and space; cold-cache real fetches equal to the charge.
fn replay<I: PersistIndex + SecondaryIndex>(reference: &I) {
    ensure_saved();
    for backend in [Backend::File, Backend::Mmap] {
        let opened = reopen::<I>(backend, 4096);
        assert_eq!(opened.index.len(), reference.len(), "{}", I::TAG);
        assert_eq!(opened.index.sigma(), reference.sigma(), "{}", I::TAG);
        assert_eq!(
            opened.index.space_bits(),
            reference.space_bits(),
            "{} space must survive the round-trip",
            I::TAG
        );
        for (lo, hi) in grid(reference.sigma()) {
            let io_ref = IoSession::new();
            let io_open = IoSession::new();
            let want = reference.query(lo, hi, &io_ref);
            let got = opened.index.query(lo, hi, &io_open);
            assert_eq!(got, want, "{} [{lo},{hi}] {backend:?} result", I::TAG);
            assert_eq!(
                io_ref.stats(),
                io_open.stats(),
                "{} [{lo},{hi}] {backend:?} io",
                I::TAG
            );
            assert_eq!(
                reference.cardinality_hint(lo, hi),
                opened.index.cardinality_hint(lo, hi),
                "{} [{lo},{hi}] hint",
                I::TAG
            );
        }
    }
    // Cold-cache validation: on a fresh open with a pool large enough to
    // hold the working set, the first query's real fetches equal its
    // simulated read charge; replaying it warm fetches nothing new.
    let cold = reopen::<I>(Backend::File, 1 << 16);
    let sigma = reference.sigma();
    let (lo, hi) = (sigma / 4, sigma - 1 - sigma / 4);
    let io = IoSession::new();
    let _ = cold.index.query(lo, hi, &io);
    assert_eq!(
        cold.real_fetches(),
        io.stats().reads,
        "{}: cold real fetches must equal the simulated charge",
        I::TAG
    );
    let warm = IoSession::new();
    let _ = cold.index.query(lo, hi, &warm);
    assert_eq!(
        cold.real_fetches(),
        io.stats().reads,
        "{}: warm replay must fetch nothing",
        I::TAG
    );
    assert_eq!(
        warm.stats(),
        io.stats(),
        "{}: the model charge is cache-oblivious",
        I::TAG
    );
}

#[test]
fn optimal_replays_identically() {
    replay(&build_optimal());
}

#[test]
fn uniform_tree_replays_identically() {
    replay(&build_uniform_tree());
}

#[test]
fn semi_dynamic_replays_identically() {
    replay(&build_semi_dynamic());
}

#[test]
fn fully_dynamic_replays_identically() {
    replay(&build_fully_dynamic());
}

#[test]
fn buffered_bitmap_replays_identically() {
    replay(&build_buffered_bitmap());
}

#[test]
fn position_list_replays_identically() {
    replay(&build_position_list());
}

#[test]
fn uncompressed_replays_identically() {
    replay(&build_uncompressed());
}

#[test]
fn compressed_scan_replays_identically() {
    replay(&build_compressed_scan());
}

#[test]
fn binned_replays_identically() {
    replay(&build_binned());
}

#[test]
fn multires_replays_identically() {
    replay(&build_multires());
}

#[test]
fn range_encoded_replays_identically() {
    replay(&build_range_encoded());
}

#[test]
fn interval_encoded_replays_identically() {
    replay(&build_interval_encoded());
}

/// Reopened queries agree with the naive scan (not only with the
/// reference implementation) — the original consistency oracle.
#[test]
fn reopened_indexes_agree_with_naive_scan() {
    ensure_saved();
    let (symbols, sigma) = base_workload();
    let opened = reopen::<OptimalIndex>(Backend::File, 4096);
    let opened_ut = reopen::<psi::UniformTreeIndex>(Backend::Mmap, 4096);
    for (lo, hi) in grid(sigma) {
        let want = psi::naive_query(&symbols, lo, hi).to_vec();
        let io = IoSession::new();
        assert_eq!(opened.index.query(lo, hi, &io).to_vec(), want);
        let io = IoSession::new();
        assert_eq!(opened_ut.index.query(lo, hi, &io).to_vec(), want);
    }
    // Dynamic families: the reopened state reflects the whole
    // append/change/delete history, checked against scans of the final
    // strings (∞ markers never match a range query).
    let (appended, _) = semi_dynamic_workload();
    let opened_sd = reopen::<psi::SemiDynamicIndex>(Backend::File, 4096);
    let (marked, _) = fully_dynamic_workload();
    let opened_fd = reopen::<psi::FullyDynamicIndex>(Backend::File, 4096);
    for (lo, hi) in grid(sigma) {
        let io = IoSession::new();
        assert_eq!(
            opened_sd.index.query(lo, hi, &io).to_vec(),
            psi::naive_query(&appended, lo, hi).to_vec(),
            "semi_dynamic [{lo},{hi}] post-append history"
        );
        let io = IoSession::new();
        assert_eq!(
            opened_fd.index.query(lo, hi, &io).to_vec(),
            psi::naive_query(&marked, lo, hi).to_vec(),
            "fully_dynamic [{lo},{hi}] post-change/delete history"
        );
    }
}

/// The conjunctive path over reopened per-column indexes: identical rows
/// and identical summed I/O to a freshly built indexed table.
#[test]
fn conjunctive_plans_replay_identically() {
    ensure_saved();
    let table = conjunctive_table();
    let reference = IndexedTable::build(&table, |s, g| Box::new(OptimalIndex::build(s, g, cfg())));
    let mut columns = Vec::new();
    for col in &table.columns {
        let opened = open::<OptimalIndex>(
            suite_dir().join(format!("col_{}.psi", col.name)),
            &opts(Backend::File, 4096),
        )
        .expect("open column");
        columns.push(psi::query::IndexedColumn {
            name: col.name.clone(),
            sigma: col.sigma,
            index: Box::new(opened.index),
        });
    }
    let reopened = IndexedTable::from_columns(columns);
    let predicates = [
        Predicate::and([
            Predicate::point("marital_status", 1),
            Predicate::point("sex", 0),
            Predicate::range("age", 30, 35),
        ]),
        Predicate::and([
            Predicate::not(Predicate::point("marital_status", 0)),
            Predicate::range("age", 0, 90),
        ]),
        Predicate::and([
            Predicate::range("age", 60, 127),
            Predicate::not(Predicate::range("age", 80, 127)),
            Predicate::point("sex", 1),
        ]),
    ];
    for predicate in &predicates {
        let want = reference.execute(predicate).expect("reference execute");
        let got = reopened.execute(predicate).expect("reopened execute");
        assert_eq!(got.rows, want.rows, "{predicate:?} rows");
        assert_eq!(got.io, want.io, "{predicate:?} io");
        assert_eq!(
            got.rows.to_vec(),
            predicate.naive_rows(&table),
            "{predicate:?} vs table scan"
        );
    }
}

/// Pool-size sweep: real fetches fall monotonically as the pool grows,
/// and a warm oversized pool serves the whole replay without fetching.
#[test]
fn pool_size_sweep_controls_real_reads() {
    ensure_saved();
    let sweep = [4usize, 16, 64, 4096];
    let mut fetches = Vec::new();
    for &cap in &sweep {
        let opened = reopen::<OptimalIndex>(Backend::File, cap);
        let sigma = opened.index.sigma();
        // Two passes over the grid: the second pass only hits when the
        // pool can hold the touched blocks.
        for _ in 0..2 {
            for (lo, hi) in grid(sigma) {
                let io = IoSession::new();
                let _ = opened.index.query(lo, hi, &io);
            }
        }
        let stats = opened.pool_stats();
        assert_eq!(
            stats.misses,
            opened.real_fetches(),
            "every miss is one real fetch"
        );
        fetches.push(opened.real_fetches());
    }
    for pair in fetches.windows(2) {
        assert!(
            pair[1] <= pair[0],
            "fetches must not grow with pool size: {fetches:?}"
        );
    }
    // The oversized pool caches everything: the second pass is free, so
    // total fetches are at most the distinct blocks of one pass — which
    // the smallest pool must exceed (it evicts and refetches).
    assert!(
        fetches[0] > *fetches.last().unwrap(),
        "a tiny pool must thrash: {fetches:?}"
    );
}

/// Regression: a mostly-unused alphabet produces catalog entries with
/// absent first/last positions (42-byte encodings); the metadata length
/// bound must accept them or the file saves fine and can never be
/// reopened.
#[test]
fn sparse_alphabet_catalog_roundtrips() {
    let symbols: Vec<u32> = (0..4096u32).map(|i| (i % 8) * 31).collect();
    let idx = psi::baselines::CompressedScanIndex::build(&symbols, 256, cfg());
    let path = suite_dir().join("sparse_alphabet.psi");
    psi::store::save(&idx, &path).expect("save");
    let opened = open::<psi::baselines::CompressedScanIndex>(&path, &opts(Backend::File, 1024))
        .expect("a sparse alphabet must reopen");
    let io = IoSession::new();
    assert_eq!(
        opened.index.query(0, 255, &io).to_vec(),
        (0..4096u64).collect::<Vec<_>>()
    );
}

/// Regression: unusable open options surface as a typed error, never a
/// panic (the open path's documented contract).
#[test]
fn zero_capacity_pool_is_a_typed_error() {
    ensure_saved();
    assert!(matches!(
        open::<OptimalIndex>(family_path("optimal"), &opts(Backend::File, 0)),
        Err(psi::store::StoreError::InvalidOptions { .. })
    ));
}
