//! # psi — Secondary Indexing in One Dimension
//!
//! A complete implementation of **Pagh & Rao, "Secondary Indexing in One
//! Dimension: Beyond B-trees and Bitmap Indexes" (PODS 2009,
//! arXiv:0811.2904)**: the first secondary index with simultaneously
//! worst-case optimal space *and* query time, plus its approximate and
//! dynamic variants, every baseline the paper compares against, and the
//! simulated I/O model the paper's bounds are stated in.
//!
//! ## Quick start
//!
//! ```
//! use psi::{OptimalIndex, SecondaryIndex, IoConfig};
//!
//! // A string over an ordered alphabet (dictionary-encoded column).
//! let column = psi::workloads::zipf(100_000, 256, 1.0, 42);
//! let index = OptimalIndex::build(&column, 256, IoConfig::default());
//!
//! // Alphabet range query: all rows whose value lies in [10, 20],
//! // returned compressed, with the I/O cost measured in blocks.
//! let (rows, io) = index.query_measured(10, 20);
//! println!("{} rows in {} block reads", rows.cardinality(), io.reads);
//! # assert!(rows.cardinality() > 0);
//! ```
//!
//! ## What's inside
//!
//! * [`OptimalIndex`] — Theorem 2: `O(nH₀ + n + σ lg² n)` bits,
//!   `O(z lg(n/z)/B + log_b n + lg lg n)` I/Os per query.
//! * [`UniformTreeIndex`] — Theorem 1's warm-up structure.
//! * [`ApproximateIndex`] — Theorem 3: Bloom-filter-style queries reading
//!   `O(z lg(1/ε))` bits, with lazily enumerable preimages.
//! * [`SemiDynamicIndex`] / [`BufferedIndex`] — Theorems 4–5: appends in
//!   amortized `O(lg lg n)` / `O(lg n / b)` I/Os.
//! * [`BufferedBitmapIndex`] — Theorem 6: a dynamized compressed bitmap
//!   index of independent interest.
//! * [`FullyDynamicIndex`] — Theorem 7: in-place character changes and
//!   deletions (via the `∞` character and [`DeletedPositionMap`]).
//! * [`baselines`] — position lists ("B-trees"), uncompressed/compressed/
//!   binned/multi-resolution/range-encoded/interval-encoded bitmap
//!   indexes: the paper's entire related-work spectrum, measured under
//!   the same I/O model.
//! * [`store`] — the persistent storage subsystem: save/open every
//!   index family to an on-disk store file (checksummed pages), read it
//!   back through a pinning buffer pool over file or mmap backends, and
//!   check the simulated block charges against real reads.
//! * [`wal`] — the durable write path: a checksummed write-ahead log
//!   with group commit journals every mutation before it touches RAM,
//!   incremental checkpoints flush only dirty extents into the store
//!   file, and `recover()` replays the log tail after a crash.
//! * [`query`] — the multi-attribute conjunctive engine: a [`Predicate`]
//!   algebra over [`workloads::Table`]s, executed against one index per
//!   attribute with a selectivity-ordered intersection planner (the
//!   paper's "married men of age 33", §1).
//! * [`io`] — the simulated Aggarwal–Vitter block device and I/O
//!   accounting sessions.
//! * [`obs`] — always-on observability: a lock-free metrics registry
//!   (pool, planner, WAL, scrubber, server), per-query plan traces with
//!   an `explain()` surface, and the `STATS` wire op that serves a live
//!   snapshot of it all.
//! * [`workloads`] — deterministic generators for every experiment.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of all fifteen experiments (E1–E15).

pub use psi_api::{
    check_range, naive_query, AppendIndex, ApplyError, ApplyOp, DynamicIndex, HasDisk, MutOp,
    RidSet, SecondaryIndex, Symbol,
};
pub use psi_core::{
    ApproxResult, ApproximateIndex, BufferedBitmapIndex, BufferedIndex, DeletedPositionMap, Engine,
    EngineStats, FullyDynamicIndex, OptimalIndex, SemiDynamicIndex, UniformTreeIndex,
};
pub use psi_io::{IoConfig, IoSession, IoStats};
pub use psi_query::{CombineStrategy, IndexedTable, Predicate};

/// The simulated I/O model (block device, sessions, cost formulas).
pub mod io {
    pub use psi_io::*;
}

/// Bit-level substrate (gap-compressed bitmaps, Elias codes, rank/select).
pub mod bits {
    pub use psi_bits::*;
}

/// Baseline secondary indexes from the paper's related work.
pub mod baselines {
    pub use psi_baselines::*;
}

/// Deterministic workload generators.
pub mod workloads {
    pub use psi_workloads::*;
}

/// Multi-attribute conjunctive queries (predicate algebra + planner).
pub mod query {
    pub use psi_query::*;
}

/// Persistent storage: on-disk format, file/mmap backends, buffer pool.
pub mod store {
    pub use psi_store::*;
}

/// Durable write path: write-ahead log, group commit, crash recovery.
pub mod wal {
    pub use psi_wal::*;
}

/// Network front-end: wire protocol, batched server, admission control.
pub mod serve {
    pub use psi_serve::*;
}

/// Observability: the lock-free metrics registry every layer records
/// into (counters, gauges, log-scale histograms), snapshots, and the
/// bounded ring log behind the server's slow-query surface.
pub mod obs {
    pub use psi_obs::*;
}

/// Core structures and substrates (hash families, weight-balanced trees).
pub mod core {
    pub use psi_core::*;
}

// Shared-state read path: every index family (and an opened store around
// any of them) is `Send + Sync`, so `Arc<Index>` + per-thread
// `IoSession`s is all a multi-threaded query server needs. Checked at
// compile time — an interior-mutability regression in any layer
// (io-model, store, core, baselines) fails the build here, not in a
// flaky stress test.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<OptimalIndex>();
    assert_send_sync::<UniformTreeIndex>();
    assert_send_sync::<ApproximateIndex>();
    assert_send_sync::<SemiDynamicIndex>();
    assert_send_sync::<BufferedIndex>();
    assert_send_sync::<BufferedBitmapIndex>();
    assert_send_sync::<FullyDynamicIndex>();
    assert_send_sync::<baselines::PositionListIndex>();
    assert_send_sync::<baselines::UncompressedBitmapIndex>();
    assert_send_sync::<baselines::CompressedScanIndex>();
    assert_send_sync::<baselines::BinnedBitmapIndex>();
    assert_send_sync::<baselines::MultiResolutionIndex>();
    assert_send_sync::<baselines::RangeEncodedIndex>();
    assert_send_sync::<baselines::IntervalEncodedIndex>();
    assert_send_sync::<store::Opened<OptimalIndex>>();
    assert_send_sync::<RidSet>();
    assert_send_sync::<IndexedTable>();
    assert_send_sync::<Box<dyn SecondaryIndex>>();
};
