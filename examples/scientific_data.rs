//! Scientific-data indexing (the paper's §1/[16] motivation): clustered
//! sensor-style values where bitmap indexes shine, comparing the paper's
//! structure against the whole baseline spectrum under one I/O model.
//!
//! Run with: `cargo run --release --example scientific_data`

use psi::baselines::{
    BinnedBitmapIndex, CompressedScanIndex, IntervalEncodedIndex, MultiResolutionIndex,
    PositionListIndex, RangeEncodedIndex, UncompressedBitmapIndex,
};
use psi::{IoConfig, OptimalIndex, SecondaryIndex};

fn main() {
    // Clustered measurements: 256 quantized levels, long runs (a slowly
    // varying physical signal).
    let n = 1 << 18;
    let sigma = 256;
    let data = psi::workloads::runs(n, sigma, 32.0, 11);
    let cfg = IoConfig::default();

    println!("n = {n}, sigma = {sigma}, clustered (mean run 32)");
    println!("index                          space(bits/value)   I/Os narrow   I/Os wide");

    let narrow = (100u32, 103u32); // selective band
    let wide = (32u32, 223u32); // broad band

    let report = |name: &str, space: u64, narrow_io: u64, wide_io: u64| {
        println!(
            "{name:<30} {:>17.2} {:>13} {:>11}",
            space as f64 / n as f64,
            narrow_io,
            wide_io
        );
    };

    macro_rules! bench {
        ($name:expr, $idx:expr) => {{
            let idx = $idx;
            let (_, io_n) = idx.query_measured(narrow.0, narrow.1);
            let (_, io_w) = idx.query_measured(wide.0, wide.1);
            report($name, idx.space_bits(), io_n.reads, io_w.reads);
        }};
    }

    bench!(
        "OptimalIndex (paper, Thm 2)",
        OptimalIndex::build(&data, sigma, cfg)
    );
    bench!(
        "PositionListIndex (B-tree)",
        PositionListIndex::build(&data, sigma, cfg)
    );
    bench!(
        "UncompressedBitmapIndex",
        UncompressedBitmapIndex::build(&data, sigma, cfg)
    );
    bench!(
        "CompressedScanIndex",
        CompressedScanIndex::build(&data, sigma, cfg)
    );
    bench!(
        "BinnedBitmapIndex (w=16)",
        BinnedBitmapIndex::build(&data, sigma, 16, cfg)
    );
    bench!(
        "MultiResolutionIndex (w=4)",
        MultiResolutionIndex::build(&data, sigma, 4, cfg)
    );
    bench!(
        "RangeEncodedIndex",
        RangeEncodedIndex::build(&data, sigma, cfg)
    );
    bench!(
        "IntervalEncodedIndex",
        IntervalEncodedIndex::build(&data, sigma, cfg)
    );

    println!("\nNote how the paper's structure matches the best query cost at");
    println!("every selectivity while staying near the compressed-size floor —");
    println!("the \"no trade-off\" claim of §1.3 (see EXPERIMENTS.md, E4/E10).");
}
