//! The paper's motivating OLAP scenario (§1): "in a database of people we
//! may want to find all married men of age 33", answered by intersecting
//! three secondary indexes — exactly, and approximately with per-dimension
//! false-positive filtering (§3: a non-matching point survives all d
//! approximate queries with probability at most ε^(d−k)).
//!
//! Run with: `cargo run --release --example olap_rid_intersection`

use psi::io::IoSession;
use psi::{ApproxResult, ApproximateIndex, IoConfig, OptimalIndex, SecondaryIndex};

fn main() {
    let n = 1 << 18;
    let table = psi::workloads::people_table(n, 7);
    let marital = table.column("marital_status").expect("column");
    let sex = table.column("sex").expect("column");
    let age = table.column("age").expect("column");

    // Conditions: marital_status = 1 ("married"), sex = 0 ("male"),
    // age in [33, 33].
    let conds: [(&str, u32, u32); 3] = [("marital_status", 1, 1), ("sex", 0, 0), ("age", 33, 33)];
    let truth = table.naive_conjunctive_query(&conds);
    println!(
        "ground truth: {} of {n} rows match all three conditions\n",
        truth.len()
    );

    // --- Exact RID intersection over three OptimalIndexes. ---
    let cfg = IoConfig::default();
    let idx_m = OptimalIndex::build(&marital.data, marital.sigma, cfg);
    let idx_s = OptimalIndex::build(&sex.data, sex.sigma, cfg);
    let idx_a = OptimalIndex::build(&age.data, age.sigma, cfg);
    let io = IoSession::new();
    let rm = idx_m.query(1, 1, &io);
    let rs = idx_s.query(0, 0, &io);
    let ra = idx_a.query(33, 33, &io);
    let exact = rm.intersect(&rs).intersect(&ra);
    println!(
        "exact:       z = ({}, {}, {}) -> {} rows, {} block reads total",
        rm.cardinality(),
        rs.cardinality(),
        ra.cardinality(),
        exact.cardinality(),
        io.stats().reads,
    );
    assert_eq!(exact.to_vec(), truth);

    // --- Approximate intersection (Theorem 3). ---
    // Each dimension returns a compressed hashed superset; the
    // intersection filters false positives multiplicatively.
    let eps = 0.01;
    let am = ApproximateIndex::build(&marital.data, marital.sigma, cfg, 1);
    let asx = ApproximateIndex::build(&sex.data, sex.sigma, cfg, 2);
    let aa = ApproximateIndex::build(&age.data, age.sigma, cfg, 3);
    let io2 = IoSession::new();
    let qm = am.query_approx(1, 1, eps, &io2);
    let qs = asx.query_approx(0, 0, eps, &io2);
    let qa = aa.query_approx(33, 33, eps, &io2);
    println!(
        "approximate: eps = {eps}; result representations {} / {} / {} bits ({} block reads)",
        qm.size_bits(),
        qs.size_bits(),
        qa.size_bits(),
        io2.stats().reads,
    );
    let survivors = ApproxResult::intersect_all(&[&qm, &qs, &qa]);
    let false_pos = survivors.iter().filter(|p| !truth.contains(p)).count();
    println!(
        "             {} survivors, {false_pos} false positives (filtered at the data, paper §1.1)",
        survivors.len(),
    );
    for t in &truth {
        assert!(
            survivors.contains(t),
            "approximate intersection lost a true match"
        );
    }
}
