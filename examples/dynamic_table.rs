//! A mutable dimension table: in-place updates and deletions with the
//! fully dynamic index (Theorem 7) and position translation through the
//! deleted-position map (paper §4).
//!
//! Run with: `cargo run --release --example dynamic_table`

use psi::io::IoSession;
use psi::{DeletedPositionMap, DynamicIndex, FullyDynamicIndex, IoConfig, SecondaryIndex};
use rand::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let n = 100_000usize;
    let sigma = 32;
    let mut current = psi::workloads::uniform(n, sigma, 3);
    let mut idx = FullyDynamicIndex::build(&current, sigma, IoConfig::default());
    let mut delmap = DeletedPositionMap::new(IoConfig::default());
    let io = IoSession::new();
    let mut rng = StdRng::seed_from_u64(5);

    // A mixed update stream: 70% value changes, 30% row deletions.
    let mut deletions = 0u64;
    for _ in 0..20_000 {
        let pos = rng.gen_range(0..n as u64);
        if rng.gen_bool(0.7) {
            // Deleted rows stay deleted: re-changing one would resurrect
            // it in the index while the deleted-position map still holds
            // it (and a second delete would then be rejected).
            if current[pos as usize] != u32::MAX {
                let v = rng.gen_range(0..sigma);
                idx.change(pos, v, &io);
                current[pos as usize] = v;
            }
        } else if current[pos as usize] != u32::MAX {
            idx.delete(pos, &io);
            delmap.insert(pos, &io);
            current[pos as usize] = u32::MAX; // tombstone in the mirror
            deletions += 1;
        }
    }
    println!(
        "applied 20k updates ({deletions} deletions) in {} I/Os total ({:.2}/update); {} epoch rebuilds",
        io.stats().total(),
        io.stats().total() as f64 / 20_000.0,
        idx.global_rebuilds,
    );

    // Queries skip deleted rows automatically (∞ never matches).
    let io2 = IoSession::new();
    let r = idx.query(4, 9, &io2);
    let expect = current
        .iter()
        .filter(|&&v| v != u32::MAX && (4..=9).contains(&v))
        .count() as u64;
    println!(
        "[4, 9] -> {} live rows (expected {expect}), {} reads",
        r.cardinality(),
        io2.stats().reads
    );
    assert_eq!(r.cardinality(), expect);

    // Translate between original and compacted row numbering (§4).
    let io3 = IoSession::new();
    let sample = r.iter().next().expect("non-empty result");
    let compacted = delmap
        .original_to_current(sample, &io3)
        .expect("result rows are never deleted");
    println!(
        "original row {sample} = compacted row {compacted} (translation: {} reads, roundtrip ok: {})",
        io3.stats().reads,
        delmap.current_to_original(compacted, &io3) == sample,
    );
}
