//! Append-only ingestion (paper §4.1: "OLAP and scientific data … are
//! typically read and append only"): stream a million events into the
//! semi-dynamic and buffered indexes, measuring amortized append cost and
//! querying mid-stream.
//!
//! Run with: `cargo run --release --example streaming_append`

use psi::io::IoSession;
use psi::{AppendIndex, BufferedIndex, IoConfig, SecondaryIndex, SemiDynamicIndex};

fn main() {
    let sigma = 64;
    let total = 400_000usize;
    let events = psi::workloads::zipf(total, sigma, 0.8, 23);
    let cfg = IoConfig::default();

    let mut semi = SemiDynamicIndex::new(sigma, cfg);
    let mut buffered = BufferedIndex::new(sigma, cfg);
    let mut semi_ios = 0u64;
    let mut buf_ios = 0u64;

    for (i, &e) in events.iter().enumerate() {
        let io = IoSession::new();
        semi.append(e, &io);
        semi_ios += io.stats().total();
        let io = IoSession::new();
        buffered.append(e, &io);
        buf_ios += io.stats().total();

        if (i + 1) % 100_000 == 0 {
            let io = IoSession::new();
            let r = semi.query(10, 20, &io);
            println!(
                "after {:>7} events: [10,20] -> {:>6} rows ({} reads); amortized appends: \
                 semi-dynamic {:.3} I/Os (Thm 4 ~ lg lg n = {:.1}), buffered {:.4} I/Os (Thm 5 ~ lg n/b)",
                i + 1,
                r.cardinality(),
                io.stats().reads,
                semi_ios as f64 / (i + 1) as f64,
                ((i + 1) as f64).log2().log2(),
                buf_ios as f64 / (i + 1) as f64,
            );
        }
    }

    println!(
        "\nfinal: semi-dynamic {} rebuilds ({} global); buffered pending = {}",
        semi.stats().subtree_rebuilds,
        semi.stats().global_rebuilds,
        buffered.pending(),
    );
    // Both structures agree with each other.
    let io = IoSession::untracked();
    assert_eq!(
        semi.query(3, 40, &io).to_vec(),
        buffered.query(3, 40, &io).to_vec()
    );
    println!("semi-dynamic and buffered agree on all queried ranges.");
}
