//! Live observability tour: a running server interrogated over the wire.
//!
//! Starts a psi-serve server over a multi-attribute table, drives some
//! queries at it, then asks the *server itself* what happened — the
//! `STATS` wire op for the registry snapshot (pool, planner, server
//! sections), `explain()` for a single query's plan trace, and the
//! slow-query ring log with a deliberately slow threshold so real
//! entries land in it.
//!
//! Run with: `cargo run --release --example live_stats`

use std::sync::Arc;

use psi::query::{IndexedTable, Predicate};
use psi::serve::{Client, ServeConfig, Server};
use psi::{IoConfig, OptimalIndex, SecondaryIndex};

fn main() {
    // A people table: age (128 values), sex (2), marital_status (4).
    let table = psi::workloads::people_table(20_000, 7);
    let cfg = IoConfig::default();
    let indexed = IndexedTable::build(&table, |symbols, sigma| {
        Box::new(OptimalIndex::build(symbols, sigma, cfg)) as Box<dyn SecondaryIndex>
    });

    // `explain()` before serving: the planner's own story for the
    // paper's "married men of age 33" query (§1).
    let married_men_33 = Predicate::and([
        Predicate::point("sex", 1),
        Predicate::point("age", 33),
        Predicate::point("marital_status", 1),
    ]);
    println!("--- explain: married men of age 33 ---");
    print!("{}", indexed.explain(&married_men_33).expect("explain"));

    // Serve it, with a 100µs slow-query threshold so the ring log
    // collects real traffic (production default is 50ms).
    let server = Server::serve(
        Arc::new(indexed),
        ServeConfig {
            slow_query_ns: 100_000,
            ..ServeConfig::default()
        },
    )
    .expect("serve");
    let addr = server.addr().expect("tcp addr");

    let mut client = Client::connect(addr).expect("connect");
    for id in 0..200u64 {
        let q = match id % 3 {
            0 => Predicate::range("age", (id % 100) as u32, (id % 100) as u32 + 10),
            1 => married_men_33.clone(),
            _ => Predicate::point("marital_status", (id % 4) as u32),
        };
        let resp = client
            .call(id, &q.normalize().expect("normalize"))
            .expect("call");
        resp.body.expect("rows");
    }

    // The live snapshot, fetched over the same connection via the
    // STATS op — what an operator's dashboard would poll.
    let snapshot = client.stats(9_999).expect("stats");
    println!("\n--- STATS (over the wire) ---");
    print!("{}", snapshot.render());

    // The slow-query ring: newest entries with their full plan traces.
    let slow = server.slow_queries();
    println!("--- slow-query log: {} entr(ies) ---", slow.len());
    if let Some(sq) = slow.last() {
        println!(
            "conn={} id={} elapsed={}us",
            sq.conn,
            sq.id,
            sq.elapsed_ns / 1_000
        );
        if let Some(trace) = &sq.trace {
            print!("{}", trace.render());
        }
    }

    server.shutdown();
}
