//! Quickstart: build the optimal secondary index over a dictionary-encoded
//! column, run range queries, and inspect space and I/O against the
//! paper's bounds.
//!
//! Run with: `cargo run --release --example quickstart`

use psi::io::cost;
use psi::{IoConfig, OptimalIndex, SecondaryIndex};

fn main() {
    // A column of 1M values over a 512-value dictionary, Zipf-skewed the
    // way real categorical data tends to be.
    let n = 1 << 20;
    let sigma = 512;
    let column = psi::workloads::zipf(n, sigma, 1.0, 42);

    println!("building OptimalIndex over n = {n}, sigma = {sigma} ...");
    let index = OptimalIndex::build(&column, sigma, IoConfig::default());

    // Space: Theorem 2 promises O(nH0 + n + sigma lg^2 n) bits.
    let nh0 = psi::bits::entropy::nh0_bits(&column, sigma);
    println!(
        "space: {:.2} MiB ({:.2} bits/value; nH0 = {:.2} bits/value; {} materialized cuts)",
        index.space_bits() as f64 / 8.0 / 1024.0 / 1024.0,
        index.space_bits() as f64 / n as f64,
        nh0 / n as f64,
        index.num_cuts(),
    );

    // Range queries at several selectivities.
    println!(
        "\n{:>14} {:>10} {:>12} {:>12} {:>12}",
        "range", "z", "I/Os", "thm2 bound", "result bits"
    );
    for (lo, hi) in [(7u32, 7u32), (10, 13), (0, 31), (100, 355), (0, 511)] {
        let (result, io) = index.query_measured(lo, hi);
        let z = result.cardinality();
        let b = IoConfig::default().words_per_block(n as u64);
        let bound = cost::thm2_query_ios(n as u64, z, psi::io::DEFAULT_BLOCK_BITS, b);
        println!(
            "{:>14} {:>10} {:>12} {:>12.1} {:>12}",
            format!("[{lo}, {hi}]"),
            z,
            io.reads,
            bound,
            result.size_bits(),
        );
    }

    // The answer is exact and compressed; positions decode on demand.
    let (result, _) = index.query_measured(3, 5);
    let first: Vec<u64> = result.iter().take(5).collect();
    println!("\nfirst rows matching [3, 5]: {first:?}");
}
